"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENT_INVENTORY, build_parser, main


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"
        assert args.key_size == 256
        assert args.mode == "secure"

    def test_query_arguments(self):
        args = build_parser().parse_args(
            ["query", "--n", "12", "--m", "2", "--k", "4", "--mode", "basic"])
        assert (args.n, args.m, args.k, args.mode) == (12, 2, 4, "basic")

    def test_project_requires_known_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["project", "--figure", "9z"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert (args.shards, args.batch_size, args.clients) == (2, 4, 4)
        assert args.backend == "process"

    def test_query_accepts_sharded_mode(self):
        args = build_parser().parse_args(["query", "--mode", "sharded"])
        assert args.mode == "sharded"

    def test_precompute_knobs(self):
        args = build_parser().parse_args(["query", "--precompute", "3"])
        assert args.precompute == 3
        args = build_parser().parse_args(
            ["serve", "--precompute", "2", "--precompute-producer"])
        assert args.precompute == 2
        assert args.precompute_producer is True

    def test_party_arguments(self):
        args = build_parser().parse_args(
            ["party", "--role", "c2", "--listen", "0.0.0.0:9001",
             "--port-file", "c2.port", "--pool-cache", "c2.pools"])
        assert args.command == "party"
        assert args.role == "c2"
        assert args.listen == "0.0.0.0:9001"
        assert args.port_file == "c2.port"
        assert args.pool_cache == "c2.pools"
        with pytest.raises(SystemExit):  # --role is mandatory
            build_parser().parse_args(["party"])

    def test_query_accepts_distributed_mode_and_connect(self):
        args = build_parser().parse_args(["query", "--mode", "distributed"])
        assert args.mode == "distributed"
        args = build_parser().parse_args(
            ["query", "--connect-c1", "127.0.0.1:9000",
             "--connect-c2", "127.0.0.1:9001"])
        assert args.connect_c1 == "127.0.0.1:9000"
        assert args.connect_c2 == "127.0.0.1:9001"

    def test_connect_flags_must_come_in_pairs(self):
        exit_code = main(["query", "--connect-c1", "127.0.0.1:9000"])
        assert exit_code == 2


class TestInventoryCommand:
    def test_lists_every_figure(self, capsys):
        exit_code = main(["inventory"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for entry in EXPERIMENT_INVENTORY:
            assert entry["figure"] in output
        assert "bench_fig3_parallel" in output


class TestCalibrateCommand:
    def test_calibrate_small_key(self, capsys):
        exit_code = main(["calibrate", "--key-size", "128", "--samples", "5"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "encrypt (ms)" in output
        assert "128" in output

    def test_calibrate_two_keys_reports_slowdown(self, capsys):
        exit_code = main(["calibrate", "--key-size", "128", "--key-size", "256",
                          "--samples", "5"])
        assert exit_code == 0
        assert "slowdown 128 -> 256" in capsys.readouterr().out


class TestQueryCommand:
    def test_basic_query_round_trip(self, capsys):
        exit_code = main(["query", "--n", "10", "--m", "2", "--k", "2",
                          "--l", "7", "--key-size", "128", "--mode", "basic",
                          "--seed", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "matches plaintext answer: True" in output

    def test_secure_query_round_trip(self, capsys):
        exit_code = main(["query", "--n", "6", "--m", "2", "--k", "1",
                          "--l", "7", "--key-size", "128", "--mode", "secure",
                          "--seed", "4"])
        assert exit_code == 0
        assert "matches plaintext answer: True" in capsys.readouterr().out

    def test_precomputed_query_round_trip(self, capsys):
        exit_code = main(["query", "--n", "10", "--m", "2", "--k", "2",
                          "--l", "7", "--key-size", "128", "--mode", "basic",
                          "--precompute", "1", "--seed", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "matches plaintext answer: True" in output
        assert "offline" in output


class TestDemoCommand:
    def test_demo_basic_mode(self, capsys):
        exit_code = main(["demo", "--key-size", "128", "--mode", "basic"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "matches plaintext answer: True" in output
        assert "neighbor 1" in output


class TestServeCommand:
    def test_serve_round_trip_matches_oracle(self, capsys):
        exit_code = main(["serve", "--n", "12", "--m", "2", "--k", "2",
                          "--l", "7", "--key-size", "128", "--shards", "2",
                          "--workers", "1", "--backend", "serial",
                          "--batch-size", "2", "--clients", "2",
                          "--queries", "4", "--pool-size", "8", "--seed", "5"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "all answers match plaintext oracle: True" in output
        assert "queries/s" in output

    def test_serve_with_precompute_engine(self, capsys):
        exit_code = main(["serve", "--n", "10", "--m", "2", "--k", "2",
                          "--l", "7", "--key-size", "128", "--shards", "2",
                          "--workers", "1", "--backend", "serial",
                          "--batch-size", "2", "--clients", "2",
                          "--queries", "2", "--pool-size", "0",
                          "--precompute", "2", "--seed", "6"])
        assert exit_code == 0
        assert "all answers match plaintext oracle: True" in \
            capsys.readouterr().out


class TestProjectCommand:
    @pytest.mark.parametrize("figure", ["2a", "2c", "2f", "3"])
    def test_project_prints_series(self, capsys, figure):
        exit_code = main(["project", "--figure", figure, "--samples", "5"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert output.startswith("== ")
        assert "SkNN" in output
        assert any(character.isdigit() for character in output)
