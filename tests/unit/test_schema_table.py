"""Unit tests for the schema and table substrate."""

from __future__ import annotations

import pytest

from repro.db.schema import Attribute, Schema
from repro.db.table import Record, Table
from repro.exceptions import DatabaseError, SchemaError


class TestAttribute:
    def test_basic_construction(self):
        attribute = Attribute("age", "age in years", 0, 150)
        assert attribute.range_width == 151

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_rejects_inverted_range(self):
        with pytest.raises(SchemaError):
            Attribute("x", minimum=10, maximum=5)

    def test_rejects_negative_minimum(self):
        with pytest.raises(SchemaError):
            Attribute("x", minimum=-1, maximum=5)

    def test_validate_accepts_in_range(self):
        Attribute("x", minimum=0, maximum=10).validate(5)

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(SchemaError):
            Attribute("x", minimum=0, maximum=10).validate(11)

    def test_validate_rejects_non_int(self):
        with pytest.raises(SchemaError):
            Attribute("x").validate("5")
        with pytest.raises(SchemaError):
            Attribute("x").validate(True)


class TestSchema:
    def test_from_names(self):
        schema = Schema.from_names(["a", "b", "c"], minimum=0, maximum=9)
        assert schema.dimensions == 3
        assert schema.names == ("a", "b", "c")

    def test_uniform(self):
        schema = Schema.uniform(4, maximum=15)
        assert schema.dimensions == 4
        assert all(a.maximum == 15 for a in schema)

    def test_rejects_duplicate_names(self):
        with pytest.raises(SchemaError):
            Schema.from_names(["a", "a"])

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_attribute_lookup_and_index(self):
        schema = Schema.from_names(["x", "y"])
        assert schema.attribute("y").name == "y"
        assert schema.index_of("y") == 1
        with pytest.raises(SchemaError):
            schema.attribute("z")
        with pytest.raises(SchemaError):
            schema.index_of("z")

    def test_validate_record(self):
        schema = Schema.from_names(["x", "y"], maximum=10)
        schema.validate_record([1, 2])
        with pytest.raises(SchemaError):
            schema.validate_record([1])
        with pytest.raises(SchemaError):
            schema.validate_record([1, 11])

    def test_max_squared_distance_and_bit_length(self):
        schema = Schema.uniform(2, maximum=3)
        assert schema.max_squared_distance() == 2 * 9
        assert schema.distance_bit_length() == 5  # 18 needs 5 bits

    def test_len_and_iter(self):
        schema = Schema.from_names(["a", "b"])
        assert len(schema) == 2
        assert [a.name for a in schema] == ["a", "b"]


class TestRecord:
    def test_rejects_empty_id(self):
        with pytest.raises(SchemaError):
            Record("", (1, 2))

    def test_as_dict(self):
        schema = Schema.from_names(["x", "y"])
        record = Record("t1", (3, 4))
        assert record.as_dict(schema) == {"x": 3, "y": 4}

    def test_as_dict_arity_mismatch(self):
        schema = Schema.from_names(["x", "y", "z"])
        with pytest.raises(SchemaError):
            Record("t1", (3, 4)).as_dict(schema)

    def test_len(self):
        assert len(Record("t1", (1, 2, 3))) == 3


class TestTable:
    def make_table(self) -> Table:
        schema = Schema.from_names(["x", "y"], maximum=100)
        return Table.from_rows(schema, [[1, 2], [3, 4], [5, 6]])

    def test_from_rows_generates_paper_style_ids(self):
        table = self.make_table()
        assert [record.record_id for record in table] == ["t1", "t2", "t3"]

    def test_insert_validates_schema(self):
        table = self.make_table()
        with pytest.raises(SchemaError):
            table.insert(Record("t9", (1, 999)))

    def test_duplicate_id_rejected(self):
        table = self.make_table()
        with pytest.raises(DatabaseError):
            table.insert(Record("t1", (0, 0)))

    def test_insert_row_autogenerates_id(self):
        table = self.make_table()
        record = table.insert_row([7, 8])
        assert record.record_id == "t4"
        assert table.get("t4").values == (7, 8)

    def test_get_unknown_id(self):
        with pytest.raises(DatabaseError):
            self.make_table().get("missing")

    def test_contains_len_iter(self):
        table = self.make_table()
        assert "t2" in table
        assert "t9" not in table
        assert len(table) == 3
        assert len(list(table)) == 3

    def test_row_values(self):
        assert self.make_table().row_values() == [(1, 2), (3, 4), (5, 6)]

    def test_squared_distance(self):
        table = self.make_table()
        assert table.squared_distance("t1", [1, 2]) == 0
        assert table.squared_distance("t2", [0, 0]) == 25
        with pytest.raises(DatabaseError):
            table.squared_distance("t1", [1, 2, 3])

    def test_describe_mentions_shape(self):
        description = self.make_table().describe()
        assert "3 records" in description
        assert "2 attributes" in description
