"""Unit tests for the paper-scale projection builders."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import Calibrator, PaillierTimings
from repro.analysis.projections import (
    figure_2a_series,
    figure_2c_series,
    figure_2d_series,
    figure_2f_series,
    figure_3_series,
    sminn_share_series,
)


class _FixedCalibrator(Calibrator):
    """Calibrator stub returning unit per-operation costs (no measurement).

    Projection shapes are ratios of operation counts, so unit timings are
    enough to test them and keep this module free of real key generation.
    """

    def __init__(self) -> None:
        super().__init__(samples=3)

    def timings_for(self, key_size: int) -> PaillierTimings:  # noqa: D102
        scale = (key_size / 512) ** 3  # cubic growth in the modulus size
        return PaillierTimings(key_size=key_size,
                               encryption_seconds=1e-3 * scale,
                               decryption_seconds=1e-3 * scale,
                               exponentiation_seconds=1e-3 * scale)


@pytest.fixture(scope="module")
def calibrator() -> Calibrator:
    return _FixedCalibrator()


class TestFigure2aSeries:
    def test_linear_in_n_and_m(self, calibrator):
        series = figure_2a_series(calibrator, key_size=512,
                                  n_values=[2000, 4000], m_values=[6, 12])
        rows = series.rows()
        assert rows[1]["m=6"] == pytest.approx(2 * rows[0]["m=6"], rel=0.01)
        assert rows[0]["m=12"] == pytest.approx(2 * rows[0]["m=6"], rel=0.05)

    def test_title_mentions_parameters(self, calibrator):
        series = figure_2a_series(calibrator, key_size=512,
                                  n_values=[2000], m_values=[6])
        assert "K=512" in series.title


class TestFigure2cSeries:
    def test_flat_in_k_and_gap_between_key_sizes(self, calibrator):
        series = figure_2c_series(calibrator, key_sizes=[512, 1024],
                                  k_values=[5, 25])
        rows = series.rows()
        assert rows[1]["K=512"] / rows[0]["K=512"] < 1.01
        assert rows[0]["K=1024"] > 4 * rows[0]["K=512"]


class TestFigure2dSeries:
    def test_grows_with_k_and_l(self, calibrator):
        series = figure_2d_series(calibrator, key_size=512,
                                  k_values=[5, 25], l_values=[6, 12])
        rows = series.rows()
        assert rows[1]["l=6"] > 3 * rows[0]["l=6"]
        assert rows[0]["l=12"] > rows[0]["l=6"]


class TestFigure2fSeries:
    def test_secure_dominates_basic(self, calibrator):
        series = figure_2f_series(calibrator, key_size=512, k_values=[5, 25])
        rows = series.rows()
        assert all(row["SkNNm"] > 10 * row["SkNNb"] for row in rows)


class TestFigure3Series:
    def test_parallel_is_serial_divided_by_workers(self, calibrator):
        series = figure_3_series(calibrator, key_size=512,
                                 n_values=[2000, 10000], workers=6)
        rows = series.rows()
        for row in rows:
            assert row["serial"] / row["parallel"] == pytest.approx(6.0)


class TestSminnShareSeries:
    def test_share_grows_with_k(self):
        series = sminn_share_series([5, 25])
        shares = series.series["SMINn share"]
        assert 0 < shares[0] < 100
        assert shares[1] > shares[0]
