"""Wire codec and framing: every channel payload shape must round-trip.

Satellite of the distributed-runtime PR: the encode/decode pair must be the
identity on every ``Message.payload`` shape the SM/SSED/SBD/SMIN/SMIN_n/SkNN
protocols put on a channel — including negative residues, empty batches and
deeply nested list/tuple mixes — because a lossy codec would silently corrupt
a protocol round instead of failing it.
"""

from __future__ import annotations

import socket

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.serialization import (
    FRAME_HEADER_BYTES,
    payload_from_jsonable,
    payload_to_jsonable,
)
from repro.exceptions import ChannelError, SerializationError
from repro.network.channel import Message, message_wire_size
from repro.transport.framing import MAX_FRAME_BYTES, recv_frame, send_frame
from repro.transport.wire import WireCodec


def roundtrip(payload, public_key):
    return payload_from_jsonable(payload_to_jsonable(payload), public_key)


class TestProtocolPayloadShapes:
    """One representative payload per protocol message tag."""

    def assert_identity(self, payload, public_key):
        result = roundtrip(payload, public_key)
        assert self.normalize(result) == self.normalize(payload)
        assert type(result) is type(payload)

    @staticmethod
    def normalize(payload):
        """Ciphertext equality is by raw value (dataclass identity differs)."""
        from repro.crypto.paillier import Ciphertext

        if isinstance(payload, Ciphertext):
            return ("ct", payload.value)
        if isinstance(payload, list):
            return [TestProtocolPayloadShapes.normalize(p) for p in payload]
        if isinstance(payload, tuple):
            return tuple(TestProtocolPayloadShapes.normalize(p) for p in payload)
        if isinstance(payload, dict):
            return {k: TestProtocolPayloadShapes.normalize(v)
                    for k, v in payload.items()}
        return payload

    def test_sm_masked_operands(self, public_key):
        # SM.masked_operands / SM.batch_masked_operands: [cts, cts]
        cts = [public_key.encrypt(v) for v in (0, 1, -5)]
        self.assert_identity([cts[:2], cts[1:]], public_key)

    def test_sm_single_product(self, public_key):
        # SM.masked_product: one bare ciphertext
        self.assert_identity(public_key.encrypt(42), public_key)

    def test_sbd_masked_values(self, public_key):
        # SBD.batch_masked_values: flat ciphertext vector (possibly empty)
        self.assert_identity([public_key.encrypt(v) for v in range(3)],
                             public_key)
        self.assert_identity([], public_key)

    def test_smin_gamma_and_l(self, public_key):
        # SMIN.batch_gamma_and_l: [[gamma_vec, l_vec], ...] nesting
        vec = [public_key.encrypt(v) for v in (1, 0)]
        self.assert_identity([[vec, vec], [vec, vec]], public_key)

    def test_sknnb_distances(self, public_key):
        # SkNNb.encrypted_distances: [k, [(index, ct), ...]] with tuples
        indexed = [(i, public_key.encrypt(i * i)) for i in range(4)]
        self.assert_identity([2, indexed], public_key)

    def test_sknnb_topk_indices(self, public_key):
        # SkNNb.topk_indices: plain int list
        self.assert_identity([3, 0, 7], public_key)

    def test_delivery_payload(self, public_key):
        # SkNN.masked_results: [delivery_id, [[ct, ...], ...]]
        records = [[public_key.encrypt(v) for v in (9, 8)] for _ in range(2)]
        self.assert_identity([17, records], public_key)

    def test_negative_residues_and_big_ints(self, public_key):
        n = public_key.n
        self.assert_identity([-1, -(n - 1), n * n + 3, 0], public_key)

    def test_control_shapes(self, public_key):
        # provisioning/control payloads: dicts with str keys, None, bools,
        # floats and strings
        self.assert_identity(
            {"mode": "secure", "k": 2, "seed": None, "warm": True,
             "elapsed": 0.25, "nested": {"a": [1, 2], "b": (3, 4)}},
            public_key)

    def test_empty_batches(self, public_key):
        self.assert_identity([[], [], ()], public_key)

    def test_unsupported_type_raises(self, public_key):
        with pytest.raises(SerializationError):
            payload_to_jsonable(object())

    def test_ciphertext_without_key_raises(self, public_key):
        encoded = payload_to_jsonable(public_key.encrypt(1))
        with pytest.raises(SerializationError):
            payload_from_jsonable(encoded, None)


# ---------------------------------------------------------------------------
# Property test: encode . decode == identity on arbitrary nested payloads
# ---------------------------------------------------------------------------

def payload_strategy(ciphertext_values):
    scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10 ** 40), max_value=10 ** 40),
        st.text(max_size=12),
        st.sampled_from(ciphertext_values),
    )
    return st.recursive(
        scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.lists(children, max_size=3).map(tuple),
            st.dictionaries(st.text(max_size=6), children, max_size=3),
        ),
        max_leaves=12,
    )


class TestPayloadProperty:
    # The public_key fixture is immutable across examples, so reusing it is
    # safe despite its function scope.
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_encode_decode_identity(self, data, public_key):
        ciphertexts = [public_key.encrypt(v) for v in (-3, 0, 1)]
        payload = data.draw(payload_strategy(ciphertexts))
        result = roundtrip(payload, public_key)
        normalize = TestProtocolPayloadShapes.normalize
        assert normalize(result) == normalize(payload)


# ---------------------------------------------------------------------------
# Message envelope + framing
# ---------------------------------------------------------------------------

class TestMessageCodec:
    def test_message_round_trip(self, public_key):
        codec = WireCodec(public_key)
        message = Message("C1", "C2", "SM.masked_operands",
                          [public_key.encrypt(5), -7])
        decoded = codec.decode_message(codec.encode_message(message))
        assert decoded.sender == "C1"
        assert decoded.recipient == "C2"
        assert decoded.tag == "SM.masked_operands"
        assert decoded.payload[0].value == message.payload[0].value
        assert decoded.payload[1] == -7

    def test_wire_size_matches_frame(self, public_key):
        codec = WireCodec(public_key)
        message = Message("C1", "C2", "t", [public_key.encrypt(1), [2, 3]])
        assert message_wire_size(message) == (
            len(codec.encode_message(message)) + FRAME_HEADER_BYTES)

    def test_malformed_envelope_raises(self, public_key):
        codec = WireCodec(public_key)
        with pytest.raises(ChannelError):
            codec.decode_message(b"{not json")
        with pytest.raises(ChannelError):
            codec.decode_message(b'["only", "three", "parts"]')


class TestFraming:
    def test_socketpair_round_trip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, b"hello")
            send_frame(left, b"")
            assert recv_frame(right) == b"hello"
            assert recv_frame(right) == b""
        finally:
            left.close()
            right.close()

    def test_clean_close_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_truncated_stream_raises(self):
        left, right = socket.socketpair()
        try:
            # A header promising 100 bytes, then EOF.
            left.sendall((100).to_bytes(4, "big") + b"short")
            left.close()
            with pytest.raises(ChannelError, match="mid-frame|header and body"):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_frame_rejected(self, monkeypatch):
        left, right = socket.socketpair()
        try:
            left.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ChannelError, match="limit"):
                recv_frame(right)
            # Sender-side guard (patched limit so the test stays tiny).
            from repro.transport import framing
            monkeypatch.setattr(framing, "MAX_FRAME_BYTES", 8)
            with pytest.raises(ChannelError, match="refusing"):
                send_frame(left, b"x" * 9)
        finally:
            left.close()
            right.close()
