"""Unit tests for the number-theory primitives."""

from __future__ import annotations

from random import Random

import pytest

from repro.crypto import numtheory as nt
from repro.exceptions import CryptoError


class TestIsProbablePrime:
    def test_small_primes_are_prime(self):
        for prime in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert nt.is_probable_prime(prime)

    def test_small_composites_are_not_prime(self):
        for composite in (0, 1, 4, 6, 9, 15, 91, 7917, 100000):
            assert not nt.is_probable_prime(composite)

    def test_negative_numbers_are_not_prime(self):
        assert not nt.is_probable_prime(-7)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool the Fermat test but not Miller-Rabin.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not nt.is_probable_prime(carmichael)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert nt.is_probable_prime(2**127 - 1)

    def test_large_known_composite(self):
        # 2^128 + 1 is composite (not a Fermat prime).
        assert not nt.is_probable_prime(2**128 + 1)

    def test_deterministic_with_rng(self):
        rng = Random(1)
        value = (2**89 - 1) * (2**61 - 1)
        assert not nt.is_probable_prime(value, rng=rng)


class TestGeneratePrime:
    def test_generated_prime_has_requested_bits(self):
        rng = Random(5)
        for bits in (16, 32, 64, 128):
            prime = nt.generate_prime(bits, rng)
            assert prime.bit_length() == bits
            assert nt.is_probable_prime(prime)

    def test_generated_prime_is_odd(self):
        prime = nt.generate_prime(32, Random(9))
        assert prime % 2 == 1

    def test_rejects_tiny_bit_lengths(self):
        with pytest.raises(CryptoError):
            nt.generate_prime(4)

    def test_prime_pair_distinct_and_sized(self):
        p, q = nt.generate_prime_pair(128, Random(3))
        assert p != q
        assert (p * q).bit_length() in (127, 128)

    def test_prime_pair_rejects_odd_bit_count(self):
        with pytest.raises(CryptoError):
            nt.generate_prime_pair(127)

    def test_prime_pair_rejects_tiny_modulus(self):
        with pytest.raises(CryptoError):
            nt.generate_prime_pair(8)


class TestEgcdAndModinv:
    def test_egcd_bezout_identity(self):
        rng = Random(2)
        for _ in range(50):
            a = rng.randrange(1, 10**9)
            b = rng.randrange(1, 10**9)
            g, x, y = nt.egcd(a, b)
            assert a * x + b * y == g
            assert a % g == 0 and b % g == 0

    def test_modinv_round_trip(self):
        rng = Random(3)
        modulus = 10007  # prime
        for _ in range(50):
            a = rng.randrange(1, modulus)
            inverse = nt.modinv(a, modulus)
            assert (a * inverse) % modulus == 1

    def test_modinv_raises_for_non_invertible(self):
        with pytest.raises(CryptoError):
            nt.modinv(6, 9)

    def test_modinv_of_negative_value(self):
        inverse = nt.modinv(-3, 7)
        assert (-3 * inverse) % 7 == 1


class TestLcmIsqrt:
    def test_lcm_basic(self):
        assert nt.lcm(4, 6) == 12
        assert nt.lcm(7, 13) == 91
        assert nt.lcm(0, 5) == 0

    def test_isqrt_exact_squares(self):
        for value in (0, 1, 4, 9, 10**18):
            assert nt.isqrt(value) ** 2 <= value
            assert (nt.isqrt(value) + 1) ** 2 > value

    def test_isqrt_matches_floor(self):
        rng = Random(11)
        for _ in range(100):
            value = rng.randrange(0, 10**12)
            root = nt.isqrt(value)
            assert root * root <= value < (root + 1) * (root + 1)

    def test_isqrt_rejects_negative(self):
        with pytest.raises(CryptoError):
            nt.isqrt(-1)


class TestRandomSampling:
    def test_random_below_in_range(self):
        rng = Random(17)
        for _ in range(200):
            value = nt.random_below(1000, rng)
            assert 0 <= value < 1000

    def test_random_below_rejects_nonpositive_bound(self):
        with pytest.raises(CryptoError):
            nt.random_below(0)

    def test_random_in_zn_star_is_invertible(self):
        rng = Random(23)
        modulus = 3 * 5 * 7 * 11 * 13
        for _ in range(50):
            unit = nt.random_in_zn_star(modulus, rng)
            assert nt.egcd(unit, modulus)[0] == 1

    def test_secure_random_without_rng(self):
        value = nt.random_below(1 << 64)
        assert 0 <= value < 1 << 64


class TestCrtCombine:
    def test_crt_two_moduli(self):
        value = nt.crt_combine([2, 3], [3, 5])
        assert value % 3 == 2
        assert value % 5 == 3

    def test_crt_three_moduli(self):
        value = nt.crt_combine([1, 2, 3], [5, 7, 11])
        assert value % 5 == 1
        assert value % 7 == 2
        assert value % 11 == 3

    def test_crt_rejects_mismatched_lengths(self):
        with pytest.raises(CryptoError):
            nt.crt_combine([1, 2], [3])

    def test_crt_rejects_non_coprime(self):
        with pytest.raises(CryptoError):
            nt.crt_combine([1, 2], [4, 6])

    def test_bit_length_of_product(self):
        assert nt.bit_length_of_product(2, 2) == 3
        assert nt.bit_length_of_product(1 << 10, 1 << 10) == 21
