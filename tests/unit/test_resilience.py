"""Unit tests for the resilience layer: deadlines, retries, idempotency,
health probes and the chaos harness."""

from __future__ import annotations

import socket
import threading
import time
from random import Random

import pytest

from repro.exceptions import (
    ChannelError,
    DeadlineExceeded,
    PeerUnavailable,
    QueryError,
    ServiceUnavailable,
)
from repro.network.channel import DuplexChannel, Message
from repro.resilience import (
    ChaosChannel,
    ChaosProxy,
    ChaosSchedule,
    Deadline,
    ReplyCache,
    RetryPolicy,
    is_retriable,
    probe_daemon,
    retry_call,
    wait_until_healthy,
)
from repro.telemetry import metrics as telemetry_metrics
from repro.transport.channel import TcpChannel
from repro.transport.daemon import PartyDaemon, ShareMailbox
from repro.transport.framing import deadline_at, recv_frame, send_frame
from repro.transport.wire import WireCodec


def counter_total(name: str) -> float:
    entry = telemetry_metrics.get_registry().snapshot().get(name)
    if not entry:
        return 0.0
    return sum(entry["values"].values())


# ---------------------------------------------------------------------------
# Typed errors
# ---------------------------------------------------------------------------

class TestErrorTaxonomy:
    def test_transport_errors_are_retriable_channel_errors(self):
        assert issubclass(DeadlineExceeded, ChannelError)
        assert issubclass(PeerUnavailable, ChannelError)
        assert is_retriable(DeadlineExceeded("x"))
        assert is_retriable(PeerUnavailable("x"))
        assert is_retriable(ServiceUnavailable("x"))

    def test_protocol_errors_are_not_retriable(self):
        assert not is_retriable(ChannelError("x"))
        assert not is_retriable(QueryError("x"))
        assert not is_retriable(ValueError("x"))

    def test_service_unavailable_carries_retry_hint(self):
        error = ServiceUnavailable("busy", retry_after_seconds=2.5)
        assert error.retry_after_seconds == 2.5


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------

class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.unbounded()
        assert deadline.remaining() is None
        assert not deadline.expired()
        assert deadline.require("op") is None

    def test_bounded_deadline_expires(self):
        deadline = Deadline(0.01)
        assert deadline.remaining() <= 0.01
        time.sleep(0.02)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded, match="op exceeded"):
            deadline.require("op")

    def test_deadline_at_converts_timeout(self):
        assert deadline_at(None) is None
        absolute = deadline_at(5.0)
        assert absolute > time.monotonic()


# ---------------------------------------------------------------------------
# RetryPolicy / retry_call
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_seconds=0.1, multiplier=2.0,
                             max_delay_seconds=0.3, jitter=0.0)
        delays = [policy.backoff_seconds(i) for i in range(4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_is_deterministic_under_a_seed(self):
        policy = RetryPolicy(jitter=0.5)
        first = [policy.backoff_seconds(i, Random(7)) for i in range(3)]
        second = [policy.backoff_seconds(i, Random(7)) for i in range(3)]
        assert first == second

    def test_retry_call_retries_only_retriable_errors(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise PeerUnavailable("down")
            return "ok"

        policy = RetryPolicy(max_attempts=4, base_delay_seconds=0.0,
                             jitter=0.0)
        assert retry_call(flaky, policy, op="unit") == "ok"
        assert len(attempts) == 3

    def test_retry_call_propagates_non_retriable_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise QueryError("bad k")

        with pytest.raises(QueryError):
            retry_call(broken, RetryPolicy(max_attempts=5,
                                           base_delay_seconds=0.0))
        assert len(attempts) == 1

    def test_retry_call_exhausts_attempts(self):
        def always_down():
            raise PeerUnavailable("down")

        with pytest.raises(PeerUnavailable):
            retry_call(always_down,
                       RetryPolicy(max_attempts=3, base_delay_seconds=0.0),
                       op="unit-exhaust")

    def test_retry_call_counts_retries(self):
        before = counter_total("repro_retries_total")

        def flaky(state=[0]):
            state[0] += 1
            if state[0] == 1:
                raise DeadlineExceeded("slow")
            return state[0]

        retry_call(flaky, RetryPolicy(max_attempts=2, base_delay_seconds=0.0))
        assert counter_total("repro_retries_total") == before + 1

    def test_retry_call_respects_deadline(self):
        started = time.monotonic()

        def always_down():
            raise PeerUnavailable("down")

        with pytest.raises(PeerUnavailable):
            retry_call(always_down,
                       RetryPolicy(max_attempts=100,
                                   base_delay_seconds=0.05, jitter=0.0),
                       deadline=Deadline(0.15))
        assert time.monotonic() - started < 1.0

    def test_on_retry_hook_runs_between_attempts(self):
        seen = []

        def flaky(state=[0]):
            state[0] += 1
            if state[0] < 2:
                raise PeerUnavailable("down")
            return "ok"

        retry_call(flaky, RetryPolicy(max_attempts=3, base_delay_seconds=0.0),
                   on_retry=lambda error, attempt: seen.append(
                       (type(error).__name__, attempt)))
        assert seen == [("PeerUnavailable", 0)]

    def test_none_policy_is_single_attempt(self):
        assert RetryPolicy.none().max_attempts == 1


# ---------------------------------------------------------------------------
# ReplyCache
# ---------------------------------------------------------------------------

class TestReplyCache:
    def test_duplicate_key_replays_without_recompute(self):
        cache = ReplyCache(name="unit")
        calls = []
        compute = lambda: calls.append(1) or {"answer": 42}
        first = cache.run("q1", compute)
        second = cache.run("q1", compute)
        assert first == second == {"answer": 42}
        assert len(calls) == 1
        assert cache.replays == 1

    def test_none_key_disables_idempotency(self):
        cache = ReplyCache(name="unit")
        calls = []
        cache.run(None, lambda: calls.append(1))
        cache.run(None, lambda: calls.append(1))
        assert len(calls) == 2

    def test_failed_attempt_is_not_memoized(self):
        cache = ReplyCache(name="unit")
        state = [0]

        def sometimes():
            state[0] += 1
            if state[0] == 1:
                raise PeerUnavailable("first attempt dies")
            return "second"

        with pytest.raises(PeerUnavailable):
            cache.run("q1", sometimes)
        assert cache.run("q1", sometimes) == "second"
        assert state[0] == 2

    def test_in_flight_duplicate_joins_the_original(self):
        cache = ReplyCache(name="unit")
        release = threading.Event()
        results = []

        def slow():
            release.wait(5.0)
            return "shared"

        owner = threading.Thread(
            target=lambda: results.append(cache.run("q", slow)))
        owner.start()
        time.sleep(0.05)  # let the owner claim the entry
        joiner = threading.Thread(
            target=lambda: results.append(
                cache.run("q", lambda: "never runs", timeout=5.0)))
        joiner.start()
        release.set()
        owner.join(5.0)
        joiner.join(5.0)
        assert results == ["shared", "shared"]

    def test_in_flight_join_times_out(self):
        cache = ReplyCache(name="unit")
        release = threading.Event()
        owner = threading.Thread(
            target=lambda: cache.run("q", lambda: release.wait(5.0)))
        owner.start()
        time.sleep(0.05)
        with pytest.raises(DeadlineExceeded, match="still in flight"):
            cache.run("q", lambda: "x", timeout=0.1)
        release.set()
        owner.join(5.0)

    def test_capacity_bounds_completed_entries(self):
        cache = ReplyCache(capacity=4, name="unit")
        for i in range(10):
            cache.run(f"q{i}", lambda i=i: i)
        assert len(cache) <= 4
        # the newest entry survives eviction
        assert "q9" in cache

    def test_clear_forgets_replies(self):
        cache = ReplyCache(name="unit")
        cache.run("q", lambda: "old epoch")
        cache.clear()
        assert cache.run("q", lambda: "new epoch") == "new epoch"

    def test_hammer_joins_and_evictions_never_run_a_key_concurrently(self):
        """Stress the join + FIFO-eviction paths from many threads at once.

        Eight workers fire replays at eight keys through a capacity-4 cache,
        so joins (duplicate of an in-flight key) and evictions (completed
        entries pushed out FIFO) interleave constantly.  The invariant: two
        computations for the same key never overlap in time — a duplicate
        either joins the in-flight original or, post-eviction, starts a new
        computation strictly after the previous one finished.
        """
        cache = ReplyCache(capacity=4, name="hammer")
        keys = [f"q{index}" for index in range(8)]
        in_flight: dict[str, int] = {key: 0 for key in keys}
        generations: dict[str, int] = {key: 0 for key in keys}
        state_lock = threading.Lock()
        violations: list[str] = []
        errors: list[BaseException] = []

        def compute(key: str):
            with state_lock:
                in_flight[key] += 1
                if in_flight[key] > 1:
                    violations.append(key)
                generations[key] += 1
                generation = generations[key]
            time.sleep(0.001)  # widen the window so overlaps would show
            with state_lock:
                in_flight[key] -= 1
            return (key, generation)

        def worker(seed: int) -> None:
            rng = Random(seed)
            try:
                for _ in range(40):
                    key = rng.choice(keys)
                    value = cache.run(key, lambda key=key: compute(key),
                                      timeout=10.0)
                    assert value[0] == key  # never another key's reply
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors
        assert not violations, (
            f"concurrent computations observed for keys {set(violations)}")
        assert len(cache) <= 4  # FIFO eviction kept the memo bounded


# ---------------------------------------------------------------------------
# ShareMailbox idempotency
# ---------------------------------------------------------------------------

class TestShareMailbox:
    def test_fetch_without_token_stays_single_use(self):
        mailbox = ShareMailbox()
        mailbox.put(7, [[1, 2]])
        assert mailbox.fetch(7, timeout=0.1) == [[1, 2]]
        with pytest.raises(ChannelError, match="no share filed"):
            mailbox.fetch(7, timeout=0.05)

    def test_fetch_timeout_is_a_typed_deadline(self):
        mailbox = ShareMailbox()
        with pytest.raises(DeadlineExceeded, match="no share filed"):
            mailbox.fetch(99, timeout=0.05)

    def test_same_token_replays_the_delivered_share(self):
        mailbox = ShareMailbox()
        mailbox.put(7, [[1, 2]])
        first = mailbox.fetch(7, timeout=0.1, attempt="q-a-1")
        replay = mailbox.fetch(7, timeout=0.1, attempt="q-a-1")
        assert first == replay == [[1, 2]]
        assert len(mailbox) == 0  # still consumed exactly once

    def test_different_token_is_refused(self):
        mailbox = ShareMailbox()
        mailbox.put(7, [[1, 2]])
        mailbox.fetch(7, timeout=0.1, attempt="q-a-1")
        with pytest.raises(DeadlineExceeded, match="no share filed"):
            mailbox.fetch(7, timeout=0.05, attempt="q-b-1")

    def test_tokenless_refetch_after_token_fetch_is_refused(self):
        mailbox = ShareMailbox()
        mailbox.put(7, [[1, 2]])
        mailbox.fetch(7, timeout=0.1, attempt="q-a-1")
        with pytest.raises(ChannelError, match="no share filed"):
            mailbox.fetch(7, timeout=0.05)

    def test_clear_drops_the_replay_memo(self):
        mailbox = ShareMailbox()
        mailbox.put(7, [[1, 2]])
        mailbox.fetch(7, timeout=0.1, attempt="q-a-1")
        mailbox.clear()
        with pytest.raises(DeadlineExceeded):
            mailbox.fetch(7, timeout=0.05, attempt="q-a-1")

    def test_memo_is_bounded(self):
        mailbox = ShareMailbox()
        for i in range(ShareMailbox.DELIVERED_MEMO + 5):
            mailbox.put(i, [[i]])
            mailbox.fetch(i, timeout=0.1, attempt=f"q-{i}")
        with pytest.raises(DeadlineExceeded):
            mailbox.fetch(0, timeout=0.05, attempt="q-0")  # evicted
        last = ShareMailbox.DELIVERED_MEMO + 4
        assert mailbox.fetch(last, timeout=0.1,
                             attempt=f"q-{last}") == [[last]]


# ---------------------------------------------------------------------------
# Framing + TcpChannel deadlines
# ---------------------------------------------------------------------------

class TestFramingDeadlines:
    def test_recv_frame_times_out_on_a_silent_peer(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(DeadlineExceeded, match="no frame within"):
                recv_frame(left, deadline=deadline_at(0.1))
        finally:
            left.close()
            right.close()

    def test_recv_frame_deadline_spans_header_and_body(self):
        left, right = socket.socketpair()
        try:
            right.sendall((100).to_bytes(4, "big") + b"partial")
            with pytest.raises(DeadlineExceeded):
                recv_frame(left, deadline=deadline_at(0.1))
        finally:
            left.close()
            right.close()

    def test_closed_socket_raises_peer_unavailable(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(PeerUnavailable, match="send failed"):
                send_frame(left, b"body")
        finally:
            right.close()

    def test_clean_roundtrip_with_deadline(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, b"hello", deadline=deadline_at(1.0))
            assert recv_frame(right, deadline=deadline_at(1.0)) == b"hello"
            # the deadline is disarmed afterwards
            assert right.gettimeout() is None
        finally:
            left.close()
            right.close()


class TestTcpChannelDeadlines:
    def _channel_pair(self, io_deadline=None):
        left, right = socket.socketpair()
        codec = WireCodec()
        c1 = TcpChannel(left, codec, "C1", "C2", io_deadline=io_deadline)
        c2 = TcpChannel(right, codec, "C2", "C1", io_deadline=io_deadline)
        return c1, c2

    def test_receive_hits_io_deadline(self):
        c1, c2 = self._channel_pair(io_deadline=0.1)
        try:
            before = counter_total("repro_deadline_hits_total")
            with pytest.raises(DeadlineExceeded):
                c1.receive("C1")
            assert counter_total("repro_deadline_hits_total") == before + 1
        finally:
            c1.close()
            c2.close()

    def test_peer_close_is_typed(self):
        c1, c2 = self._channel_pair()
        c2.close()
        try:
            with pytest.raises(PeerUnavailable, match="connection to C2"):
                c1.receive("C1")
        finally:
            c1.close()

    def test_next_tag_timeout_is_opt_in(self):
        c1, c2 = self._channel_pair(io_deadline=0.1)
        try:
            c2.send("C2", {"x": 1}, tag="step.1")
            # io_deadline does not bound the idle dispatch wait, but an
            # explicit timeout does; a queued frame returns immediately.
            assert c1.next_tag(timeout=1.0) == "step.1"
            assert c1.receive("C1", expected_tag="step.1") == {"x": 1}
            with pytest.raises(DeadlineExceeded):
                c1.next_tag(timeout=0.05)
        finally:
            c1.close()
            c2.close()


# ---------------------------------------------------------------------------
# Health probes
# ---------------------------------------------------------------------------

class TestHealth:
    def test_probe_refused_connection_is_peer_unavailable(self):
        # Bind-then-close guarantees a dead port.
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        address = placeholder.getsockname()[:2]
        placeholder.close()
        with pytest.raises(PeerUnavailable, match="not accepting"):
            probe_daemon(address, timeout=0.5)

    def test_wait_until_healthy_times_out(self):
        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        address = placeholder.getsockname()[:2]
        placeholder.close()
        with pytest.raises(DeadlineExceeded, match="did not become healthy"):
            wait_until_healthy(address, timeout=0.3, interval=0.05)

    def test_probe_live_daemon(self):
        daemon = PartyDaemon("c2", port=0)
        daemon.start()
        try:
            payload = probe_daemon((daemon.host, daemon.port), timeout=5.0)
            assert payload["role"] == "c2"
            assert payload["provisioned"] is False
            assert payload["uptime_seconds"] >= 0
            healthy = wait_until_healthy((daemon.host, daemon.port),
                                         timeout=5.0)
            assert healthy["role"] == "c2"
        finally:
            daemon.close()


# ---------------------------------------------------------------------------
# Chaos schedule + channel + proxy
# ---------------------------------------------------------------------------

class TestChaosSchedule:
    def test_from_seed_is_deterministic(self):
        a = ChaosSchedule.from_seed(7, window=32, drops=2, corrupts=1)
        b = ChaosSchedule.from_seed(7, window=32, drops=2, corrupts=1)
        assert a == b
        assert a.fault_count() == 3

    def test_fault_indices_stay_in_window(self):
        schedule = ChaosSchedule.from_seed(3, window=16, drops=4, resets=2,
                                           first_frame=10)
        indices = (schedule.drops | schedule.resets)
        assert all(10 <= index < 26 for index in indices)

    def test_overfull_window_is_rejected(self):
        with pytest.raises(ValueError, match="do not fit"):
            ChaosSchedule.from_seed(1, window=2, drops=3)

    def test_clean_schedule_never_fires(self):
        schedule = ChaosSchedule.clean()
        assert all(schedule.action_for(i) is None for i in range(100))


class TestChaosChannel:
    def test_drop_swallows_the_frame(self):
        inner = DuplexChannel("C1", "C2")
        chaos = ChaosChannel(inner, ChaosSchedule(drops=frozenset({0})))
        chaos.send("C1", "lost", tag="a")
        chaos.send("C1", "kept", tag="b")
        assert inner.pending("C2") == 1
        assert inner.receive("C2") == "kept"
        assert chaos.events == [(0, "drop", "a")]

    def test_duplicate_sends_twice(self):
        inner = DuplexChannel("C1", "C2")
        chaos = ChaosChannel(inner, ChaosSchedule(duplicates=frozenset({0})))
        chaos.send("C1", "twice", tag="a")
        assert inner.pending("C2") == 2

    def test_corrupt_damages_integers(self):
        inner = DuplexChannel("C1", "C2")
        chaos = ChaosChannel(inner, ChaosSchedule(corrupts=frozenset({0})))
        chaos.send("C1", [10, 20], tag="a")
        assert inner.receive("C2") != [10, 20]

    def test_reset_raises(self):
        inner = DuplexChannel("C1", "C2")
        chaos = ChaosChannel(inner, ChaosSchedule(resets=frozenset({0})))
        with pytest.raises(ChannelError, match="chaos: connection reset"):
            chaos.send("C1", "x", tag="a")


class _EchoServer:
    """Minimal frame echo endpoint to exercise the proxy."""

    def __init__(self):
        self.listener = socket.socket()
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(4)
        self.address = self.listener.getsockname()[:2]
        self._threads = []
        self._accept = threading.Thread(target=self._loop, daemon=True)
        self._accept.start()

    def _loop(self):
        while True:
            try:
                sock, _ = self.listener.accept()
            except OSError:
                return
            thread = threading.Thread(target=self._echo, args=(sock,),
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def _echo(self, sock):
        try:
            while True:
                body = recv_frame(sock)
                if body is None:
                    return
                send_frame(sock, body)
        except ChannelError:
            return
        finally:
            sock.close()

    def close(self):
        self.listener.close()


class TestChaosProxy:
    def test_clean_proxy_passes_frames_through(self):
        server = _EchoServer()
        with ChaosProxy(server.address) as proxy:
            sock = socket.create_connection(proxy.address, timeout=5)
            try:
                send_frame(sock, b"ping")
                assert recv_frame(sock, deadline=deadline_at(5.0)) == b"ping"
            finally:
                sock.close()
        server.close()

    def test_dropped_frame_forces_a_deadline(self):
        server = _EchoServer()
        schedule = ChaosSchedule(drops=frozenset({0}))
        with ChaosProxy(server.address, forward=schedule) as proxy:
            sock = socket.create_connection(proxy.address, timeout=5)
            try:
                send_frame(sock, b"lost")
                with pytest.raises(DeadlineExceeded):
                    recv_frame(sock, deadline=deadline_at(0.3))
                # the window is exhausted: the next frame survives
                send_frame(sock, b"kept")
                assert recv_frame(sock, deadline=deadline_at(5.0)) == b"kept"
            finally:
                sock.close()
            assert proxy.events[0]["action"] == "drop"
        server.close()

    def test_reset_kills_the_connection_but_reconnect_works(self):
        server = _EchoServer()
        schedule = ChaosSchedule(resets=frozenset({0}))
        with ChaosProxy(server.address, forward=schedule) as proxy:
            sock = socket.create_connection(proxy.address, timeout=5)
            try:
                send_frame(sock, b"boom")
                assert recv_frame(sock, deadline=deadline_at(2.0)) is None
            finally:
                sock.close()
            # frame counters persist across connections: index 1 is clean
            retry = socket.create_connection(proxy.address, timeout=5)
            try:
                send_frame(retry, b"again")
                assert recv_frame(retry,
                                  deadline=deadline_at(5.0)) == b"again"
            finally:
                retry.close()
        server.close()

    def test_corrupt_flips_bytes(self):
        server = _EchoServer()
        schedule = ChaosSchedule(corrupts=frozenset({0}))
        with ChaosProxy(server.address, forward=schedule) as proxy:
            sock = socket.create_connection(proxy.address, timeout=5)
            try:
                send_frame(sock, b"abcd")
                echoed = recv_frame(sock, deadline=deadline_at(5.0))
                assert echoed != b"abcd" and len(echoed) == 4
            finally:
                sock.close()
        server.close()
