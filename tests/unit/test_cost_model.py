"""Unit tests for the analytic cost model and the calibrated predictor."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import Calibrator, PaillierTimings
from repro.analysis.cost_model import (
    OfflineOnlineCounts,
    OperationCounts,
    sbd_counts,
    sbor_counts,
    sknn_basic_counts,
    sknn_basic_split_counts,
    sknn_secure_breakdown,
    sknn_secure_counts,
    sm_counts,
    smin_counts,
    sminn_counts,
    ssed_counts,
    ssed_scan_counts,
    ssed_scan_split_counts,
)
from repro.exceptions import ConfigurationError


class TestOperationCounts:
    def test_addition_and_scaling(self):
        counts = OperationCounts(1, 2, 3) + OperationCounts(4, 5, 6)
        assert counts == OperationCounts(5, 7, 9)
        assert 2 * OperationCounts(1, 2, 3) == OperationCounts(2, 4, 6)

    def test_total_and_dict(self):
        counts = OperationCounts(1, 2, 3)
        assert counts.total == 6
        assert counts.as_dict() == {
            "encryptions": 1, "decryptions": 2, "exponentiations": 3,
        }


class TestSubProtocolFormulas:
    def test_sm_counts(self):
        assert sm_counts() == OperationCounts(3, 2, 2)

    def test_ssed_scales_linearly_in_m(self):
        assert ssed_counts(6).total == 6 * ssed_counts(1).total

    def test_sbd_scales_linearly_in_l(self):
        assert sbd_counts(12).total == pytest.approx(2 * sbd_counts(6).total)

    def test_smin_dominated_by_linear_term(self):
        # Linear in l up to the constant term: equal increments per extra bit.
        per_bit = smin_counts(7).total - smin_counts(6).total
        assert smin_counts(12).total - smin_counts(6).total == pytest.approx(
            6 * per_bit)

    def test_sminn_is_n_minus_one_smins(self):
        assert sminn_counts(10, 6).total == pytest.approx(9 * smin_counts(6).total)

    def test_sbor_is_sm_plus_one_exponentiation(self):
        assert sbor_counts().exponentiations == sm_counts().exponentiations + 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ssed_counts(0)
        with pytest.raises(ConfigurationError):
            sbd_counts(-1)
        with pytest.raises(ConfigurationError):
            smin_counts(0)
        with pytest.raises(ConfigurationError):
            sminn_counts(0, 4)


class TestQueryProtocolFormulas:
    def test_sknnb_linear_in_n(self):
        """Figure 2(a): SkNN_b cost grows linearly with n."""
        cost_2000 = sknn_basic_counts(2000, 6, 5).total
        cost_4000 = sknn_basic_counts(4000, 6, 5).total
        assert cost_4000 / cost_2000 == pytest.approx(2.0, rel=0.01)

    def test_sknnb_linear_in_m(self):
        """Figure 2(a): SkNN_b cost grows linearly with m."""
        cost_6 = sknn_basic_counts(2000, 6, 5).total
        cost_18 = sknn_basic_counts(2000, 18, 5).total
        assert cost_18 / cost_6 == pytest.approx(3.0, rel=0.05)

    def test_sknnb_nearly_independent_of_k(self):
        """Figure 2(c): SkNN_b cost barely changes with k."""
        cost_k5 = sknn_basic_counts(2000, 6, 5).total
        cost_k25 = sknn_basic_counts(2000, 6, 25).total
        assert cost_k25 / cost_k5 < 1.01

    def test_sknnm_roughly_linear_in_k(self):
        """Figure 2(d): SkNN_m cost grows (almost) linearly with k."""
        cost_k5 = sknn_secure_counts(2000, 6, 5, 6).total
        cost_k25 = sknn_secure_counts(2000, 6, 25, 6).total
        ratio = cost_k25 / cost_k5
        assert 4.0 < ratio < 5.5

    def test_sknnm_grows_with_l(self):
        """Figure 2(d): larger l costs more (roughly linearly)."""
        cost_l6 = sknn_secure_counts(2000, 6, 5, 6).total
        cost_l12 = sknn_secure_counts(2000, 6, 5, 12).total
        assert 1.4 < cost_l12 / cost_l6 < 2.2

    def test_sknnm_much_more_expensive_than_sknnb(self):
        """Figure 2(f): SkNN_m is orders of magnitude costlier than SkNN_b."""
        basic = sknn_basic_counts(2000, 6, 5).total
        secure = sknn_secure_counts(2000, 6, 5, 6).total
        assert secure / basic > 10

    def test_breakdown_sums_to_total(self):
        breakdown = sknn_secure_breakdown(100, 6, 5, 6)
        total = breakdown.pop("total")
        summed = OperationCounts()
        for counts in breakdown.values():
            summed = summed + counts
        assert summed.total == pytest.approx(total.total)

    def test_sminn_share_increases_with_k(self):
        """Section 5.2: the SMIN_n share of SkNN_m grows as k grows."""
        def share(k: int) -> float:
            breakdown = sknn_secure_breakdown(2000, 6, k, 6)
            return breakdown["sminn"].total / breakdown["total"].total

        assert share(25) > share(5)
        assert share(5) > 0.3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            sknn_basic_counts(0, 6, 5)
        with pytest.raises(ConfigurationError):
            sknn_secure_counts(10, 6, 5, 0)


class TestOfflineOnlineSplit:
    def test_precomputed_scan_counts(self):
        """2 enc + 1 dec + 1 exp per attribute, plus the hoisted negations."""
        counts = ssed_scan_counts(10, 3, precomputed=True)
        assert counts == OperationCounts(encryptions=60, decryptions=30,
                                         exponentiations=33)

    def test_precomputed_scan_cheaper_online_than_generic(self):
        generic = ssed_scan_counts(50, 6)
        precomputed = ssed_scan_counts(50, 6, precomputed=True)
        assert precomputed.decryptions < generic.decryptions
        assert precomputed.exponentiations < generic.exponentiations

    def test_scan_split_sums_to_precomputed_counts(self):
        split = ssed_scan_split_counts(20, 4)
        combined = split.offline + split.online
        assert combined == ssed_scan_counts(20, 4, precomputed=True)

    def test_scan_split_offline_is_encryptions_only(self):
        split = ssed_scan_split_counts(20, 4)
        assert split.offline.decryptions == 0
        assert split.offline.exponentiations == 0
        assert split.online.encryptions == 0

    def test_sknnb_split_sums_to_precomputed_counts(self):
        split = sknn_basic_split_counts(30, 5, 3)
        combined = split.offline + split.online
        assert combined == sknn_basic_counts(30, 5, 3, precomputed=True)

    def test_sknnb_split_shape(self):
        n, m, k = 30, 5, 3
        split = sknn_basic_split_counts(n, m, k)
        assert split.offline.encryptions == 2 * n * m + k * m
        assert split.online.decryptions == n * m + n + k * m
        assert split.online.exponentiations == n * m + m

    def test_split_total_and_dict(self):
        split = OfflineOnlineCounts(
            offline=OperationCounts(encryptions=2),
            online=OperationCounts(decryptions=1, exponentiations=3))
        assert split.total == 6
        assert split.as_dict()["offline"]["encryptions"] == 2
        assert split.as_dict()["online"]["exponentiations"] == 3

    def test_warm_online_work_is_less_than_inline(self):
        """The point of the engine: the online residue shrinks a lot."""
        inline = sknn_basic_counts(100, 6, 5, batched=True)
        split = sknn_basic_split_counts(100, 6, 5)
        assert split.online.total < 0.5 * inline.total


class TestCalibrator:
    def test_timings_are_positive_and_cached(self):
        calibrator = Calibrator(samples=5)
        first = calibrator.timings_for(128)
        second = calibrator.timings_for(128)
        assert first is second
        assert first.encryption_seconds > 0
        assert first.decryption_seconds > 0
        assert first.exponentiation_seconds > 0

    def test_prediction_scales_with_counts(self):
        calibrator = Calibrator(samples=5)
        small = calibrator.predict_seconds(OperationCounts(10, 10, 10), 128)
        large = calibrator.predict_seconds(OperationCounts(100, 100, 100), 128)
        assert large == pytest.approx(10 * small, rel=1e-6)

    def test_larger_keys_are_slower(self):
        calibrator = Calibrator(samples=5)
        slow = calibrator.timings_for(256)
        fast = calibrator.timings_for(128)
        assert slow.encryption_seconds > fast.encryption_seconds

    def test_keypair_cached_per_size(self):
        calibrator = Calibrator(samples=5)
        assert calibrator.keypair_for(128) is calibrator.keypair_for(128)

    def test_rejects_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            Calibrator(samples=1)

    def test_timings_dataclass_prediction(self):
        timings = PaillierTimings(key_size=128, encryption_seconds=1.0,
                                  decryption_seconds=2.0,
                                  exponentiation_seconds=3.0)
        assert timings.predict_seconds(OperationCounts(1, 1, 1)) == 6.0
        assert timings.as_dict()["key_size"] == 128
