"""P2 step dispatch: the machinery that splits protocols across processes.

Every interaction with the decryptor is a registered, tag-keyed handler; the
in-memory runtime executes it inline, a C2 daemon executes it on frame
arrival.  These tests pin the registry contents (a missing registration
would deadlock a distributed run) and the dispatch semantics.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.cloud import FederatedCloud
from repro.core.sknn_basic import SkNNBasic
from repro.core.sknn_secure import SkNNSecure
from repro.exceptions import ChannelError, ProtocolError
from repro.protocols.sm import SecureMultiplication
from repro.transport.daemon import ShareMailbox

#: every tag the SM/SSED/SBD/SMIN/SMIN_n/SkNN drivers send toward C2 —
#: each MUST resolve to a handler on the C2 daemon or the driver deadlocks.
EXPECTED_SECURE_TAGS = {
    "SM.masked_operands",
    "SM.batch_masked_operands",
    "SM.batch_masked_squares",
    "SBD.masked_value",
    "SBD.batch_masked_values",
    "SMIN.gamma_and_l",
    "SMIN.batch_gamma_and_l",
    "SkNNm.randomized_differences",
    "SkNN.masked_results",
}

EXPECTED_BASIC_TAGS = {
    "SM.masked_operands",
    "SM.batch_masked_operands",
    "SM.batch_masked_squares",
    "SkNNb.encrypted_distances",
    "SkNN.masked_results",
}


class TestHandlerRegistry:
    def test_sknn_secure_registers_every_p2_tag(self, deployed_cloud):
        protocol = SkNNSecure(deployed_cloud, distance_bits=8)
        handlers = protocol.collect_p2_handlers()
        assert set(handlers) == EXPECTED_SECURE_TAGS
        assert all(callable(handler) for handler in handlers.values())

    def test_sknn_basic_registers_every_p2_tag(self, deployed_cloud):
        handlers = SkNNBasic(deployed_cloud).collect_p2_handlers()
        assert set(handlers) == EXPECTED_BASIC_TAGS

    def test_daemon_registry_union_covers_both_protocols(self, small_keypair):
        """The C2 daemon builds its dispatch table exactly this way."""
        from random import Random

        cloud = FederatedCloud.deploy(small_keypair, rng=Random(1))
        registry = {}
        for protocol in (SkNNBasic(cloud),
                         SkNNSecure(cloud, distance_bits=8)):
            registry.update(protocol.collect_p2_handlers())
        assert set(registry) == EXPECTED_SECURE_TAGS | EXPECTED_BASIC_TAGS


class TestDispatchSemantics:
    def test_unknown_tag_raises(self, setting):
        protocol = SecureMultiplication(setting)
        with pytest.raises(ProtocolError, match="no P2 step registered"):
            protocol.dispatch_p2("SM.no_such_step")

    def test_inline_dispatch_runs_handler_on_in_memory_channel(self, setting):
        """p2_step over a DuplexChannel consumes the message and replies."""
        protocol = SecureMultiplication(setting)
        pk = setting.public_key
        enc = pk.encrypt(6)
        setting.evaluator.send([enc, enc], tag="SM.masked_operands")
        protocol.p2_step("SM.masked_operands")
        reply = setting.evaluator.receive(expected_tag="SM.masked_product")
        assert setting.decryptor.decrypt_signed(reply) == 36

    def test_remote_channel_skips_inline_execution(self, setting):
        """When the channel says the peer is remote, p2_step is a no-op."""
        protocol = SecureMultiplication(setting)
        setting.channel.runs_both_parties = False
        try:
            setting.evaluator.send([1, 2], tag="SM.masked_operands")
            assert protocol.p2_step("SM.masked_operands") is None
            # The message was NOT consumed locally.
            assert setting.channel.pending("C2") == 1
        finally:
            del setting.channel.runs_both_parties


class TestShareMailbox:
    def test_put_then_fetch_pops(self):
        mailbox = ShareMailbox()
        mailbox.put(7, [[1, 2]])
        assert len(mailbox) == 1
        assert mailbox.fetch(7, timeout=1.0) == [[1, 2]]
        assert len(mailbox) == 0

    def test_fetch_blocks_until_put(self):
        mailbox = ShareMailbox()
        results = []

        def fetcher():
            results.append(mailbox.fetch(3, timeout=5.0))

        thread = threading.Thread(target=fetcher)
        thread.start()
        mailbox.put(3, [[9]])
        thread.join(timeout=5.0)
        assert results == [[[9]]]

    def test_timeout_raises(self):
        mailbox = ShareMailbox()
        with pytest.raises(ChannelError, match="no share filed"):
            mailbox.fetch(99, timeout=0.05)
