"""Unit tests for the precomputation engine and its typed pools."""

from __future__ import annotations

import threading
from random import Random

import pytest

from repro.crypto.precompute import (
    MASK_NONZERO,
    MASK_SBD,
    MASK_ZN,
    PrecomputeConfig,
    PrecomputeEngine,
)
from repro.exceptions import ConfigurationError


def make_engine(public_key, *, attach=False, seed=1,
                **overrides) -> PrecomputeEngine:
    defaults = dict(obfuscators=8, zeros=4, ones=4, power_bits=3,
                    powers_each=2, zn_masks=6, nonzero_masks=4,
                    sbd_bit_length=5, sbd_masks=4)
    defaults.update(overrides)
    return PrecomputeEngine(public_key, rng=Random(seed),
                            config=PrecomputeConfig(**defaults),
                            attach=attach)


class TestRefill:
    def test_warm_fills_every_pool_to_target(self, public_key):
        engine = make_engine(public_key)
        engine.warm()
        remaining = engine.remaining()
        assert remaining["obfuscators"] == 8
        assert remaining["constant:0"] == 4
        assert remaining["constant:1"] == 4
        assert remaining["constant:4"] == 2  # power-of-two table
        assert remaining[f"mask:{MASK_ZN}"] == 6
        assert remaining[f"mask:{MASK_NONZERO}"] == 4
        assert remaining[f"mask:{MASK_SBD}"] == 4
        assert not engine.deficits()

    def test_refill_budget_caps_offline_work(self, public_key):
        engine = make_engine(public_key)
        produced = engine.refill(budget=5)
        assert produced == 5
        assert engine.offline.encryptions == 5
        # A second unbounded refill completes the targets.
        engine.warm()
        assert not engine.deficits()

    def test_offline_counter_tracks_one_powmod_per_item(self, public_key):
        engine = make_engine(public_key)
        total = engine.warm()
        assert engine.offline.encryptions == total
        assert engine.stats()["offline_powmods"] == total

    def test_sbd_masks_require_bit_length(self, public_key):
        with pytest.raises(ConfigurationError):
            PrecomputeEngine(public_key,
                             config=PrecomputeConfig(sbd_masks=4,
                                                     sbd_bit_length=None),
                             attach=False)


class TestTypedPools:
    def test_constants_decrypt_correctly(self, public_key, private_key):
        engine = make_engine(public_key)
        engine.warm()
        assert private_key.decrypt(engine.encrypt_constant(0)) == 0
        assert private_key.decrypt(engine.encrypt_constant(1)) == 1
        assert private_key.decrypt(engine.take_power_of_two(2)) == 4
        assert engine.hits["constant:0"] == 1
        assert engine.hits["constant:4"] == 1

    def test_mask_tuples_decrypt_to_their_value(self, public_key, private_key):
        engine = make_engine(public_key)
        engine.warm()
        for kind in (MASK_ZN, MASK_NONZERO, MASK_SBD):
            r, enc_r = engine.take_mask(kind)
            assert private_key.raw_decrypt(enc_r.value) == r

    def test_sbd_masks_respect_their_range(self, public_key):
        engine = make_engine(public_key)
        engine.warm()
        upper = public_key.n - (1 << 5)
        for _ in range(4):
            r, _ = engine.take_mask(MASK_SBD, sbd_upper=upper)
            assert 0 <= r < upper

    def test_sbd_range_mismatch_skips_pool(self, public_key):
        """A caller with a different ``l`` must not get wrong-range tuples."""
        engine = make_engine(public_key)
        engine.warm()
        other_upper = public_key.n - (1 << 3)
        r, _ = engine.take_mask(MASK_SBD, sbd_upper=other_upper)
        assert 0 <= r < other_upper
        assert engine.remaining()[f"mask:{MASK_SBD}"] == 4  # untouched
        assert engine.misses[f"mask:{MASK_SBD}"] == 1

    def test_take_counts_as_logical_encryption(self, public_key):
        engine = make_engine(public_key)
        engine.warm()
        before = public_key.counter.encryptions
        engine.encrypt_constant(1)
        engine.take_mask(MASK_ZN)
        assert public_key.counter.encryptions == before + 2


class TestExhaustionAndSingleUse:
    def test_drained_pools_fall_back_to_fresh_randomness(self, public_key,
                                                         private_key):
        engine = make_engine(public_key, zn_masks=2)
        engine.warm()
        tuples = engine.take_masks(5, MASK_ZN)
        # All five are valid encryptions of their mask...
        for r, enc_r in tuples:
            assert private_key.raw_decrypt(enc_r.value) == r
        # ...and no ciphertext (hence no obfuscation factor) repeats.
        assert len({enc_r.value for _, enc_r in tuples}) == 5
        assert engine.hits[f"mask:{MASK_ZN}"] == 2
        assert engine.misses[f"mask:{MASK_ZN}"] == 3

    def test_constants_are_single_use(self, public_key):
        engine = make_engine(public_key, zeros=3)
        engine.warm()
        zeros = [engine.encrypt_constant(0) for _ in range(6)]
        assert len({c.value for c in zeros}) == 6

    def test_refill_never_reissues_a_taken_tuple(self, public_key):
        engine = make_engine(public_key, zn_masks=3)
        engine.warm()
        first = {enc.value for _, enc in engine.take_masks(3, MASK_ZN)}
        engine.warm()  # refill back to target
        second = {enc.value for _, enc in engine.take_masks(3, MASK_ZN)}
        assert first.isdisjoint(second)

    def test_concurrent_take_and_refill(self, public_key):
        engine = make_engine(public_key, zn_masks=16, obfuscators=16)
        engine.warm()
        taken: list[int] = []
        lock = threading.Lock()
        stop = threading.Event()

        def taker():
            local = [enc.value for _, enc in engine.take_masks(12, MASK_ZN)]
            with lock:
                taken.extend(local)

        def refiller():
            while not stop.is_set():
                engine.refill(budget=8)

        refill_thread = threading.Thread(target=refiller)
        refill_thread.start()
        try:
            takers = [threading.Thread(target=taker) for _ in range(4)]
            for thread in takers:
                thread.start()
            for thread in takers:
                thread.join()
        finally:
            stop.set()
            refill_thread.join()
        assert len(taken) == 48
        assert len(set(taken)) == 48  # single-use under concurrency


class TestProducerThread:
    def test_background_producer_fills_pools(self, public_key):
        engine = make_engine(public_key, zn_masks=8, obfuscators=8)
        engine.start_producer(interval_seconds=0.001)
        try:
            for _ in range(200):
                if not engine.deficits():
                    break
                threading.Event().wait(0.01)
        finally:
            engine.stop_producer()
        assert not engine.deficits()

    def test_stop_producer_is_idempotent(self, public_key):
        engine = make_engine(public_key)
        engine.stop_producer()
        engine.start_producer()
        engine.stop_producer()
        engine.stop_producer()


class TestKeyAttachment:
    def test_attach_routes_encrypt_batch_through_pool(self, small_keypair):
        public_key = small_keypair.public_key
        engine = make_engine(public_key, obfuscators=6, seed=9)
        engine.warm()
        engine.attach()
        try:
            before = public_key.counter.encryptions
            ciphertexts = public_key.encrypt_batch([1, 2, 3, 4])
            # Exact counter parity with the non-pooled path...
            assert public_key.counter.encryptions == before + 4
            # ...with the obfuscators served from the pool.
            assert engine.obfuscators.hits == 4
            assert engine.obfuscators.remaining == 2
            assert small_keypair.private_key.decrypt_batch(ciphertexts) == \
                [1, 2, 3, 4]
        finally:
            engine.detach()
        assert public_key.attached_pool is None

    def test_scalar_encrypt_consumes_attached_pool(self, small_keypair):
        public_key = small_keypair.public_key
        engine = make_engine(public_key, obfuscators=2, seed=10)
        engine.warm()
        engine.attach()
        try:
            values = [public_key.encrypt(7) for _ in range(4)]
            assert engine.obfuscators.hits == 2   # pool drained after 2
            assert engine.obfuscators.misses >= 2  # then fresh randomness
            assert len({c.value for c in values}) == 4
            assert all(small_keypair.private_key.decrypt(c) == 7
                       for c in values)
        finally:
            engine.detach()

    def test_config_for_query_load_covers_one_query(self, public_key):
        config = PrecomputeConfig.for_query_load(n_records=10, dimensions=3,
                                                 k=2, queries=1)
        # P1 consumes one mask tuple per scan attribute + delivery attribute.
        assert config.zn_masks == 10 * 3 + 2 * 3
        # The unconsumed powers-of-two table is not warmed by default.
        assert config.power_bits == 0

    def test_config_for_decryptor_load_covers_reencryptions(self, public_key):
        config = PrecomputeConfig.for_decryptor_load(
            n_records=10, dimensions=3, k=2, queries=1)
        # P2 re-encrypts one square per scan attribute.
        assert config.obfuscators >= 10 * 3
        assert config.zn_masks == 0  # masks are P1-side material


class TestPerPartySeparation:
    """Engines are per-party: P2 never draws from P1's pools (trust model)."""

    def test_decryptor_material_comes_from_decryptor_engine(
            self, small_keypair):
        from random import Random as _Random

        from repro.network.party import TwoPartySetting
        from repro.protocols.sbd import SecureBitDecomposition

        setting = TwoPartySetting.create(small_keypair, rng=_Random(40))
        c1_engine = make_engine(small_keypair.public_key, seed=41,
                                zeros=8, ones=8)
        c2_engine = make_engine(small_keypair.public_key, seed=42,
                                zeros=8, ones=8)
        c1_engine.warm()
        c2_engine.warm()
        setting.attach_engine(c1_engine, c2_engine)
        try:
            protocol = SecureBitDecomposition(setting, bit_length=5)
            bits = protocol.run(small_keypair.public_key.encrypt(13))
            from repro.protocols.encoding import decrypt_bits
            assert decrypt_bits(small_keypair.private_key, bits) == 13
            # P2's parity encryptions (E(0)/E(1)) were served by C2's own
            # engine, never by C1's constant pools.
            c2_constant_hits = sum(
                count for name, count in c2_engine.hits.items()
                if name.startswith("constant:"))
            c1_constant_hits = sum(
                count for name, count in c1_engine.hits.items()
                if name.startswith("constant:0"))
            assert c2_constant_hits == 5  # one parity bit per round
            assert c1_constant_hits == 0  # C1's E(0) pool untouched by P2
        finally:
            setting.attach_engine(None)

    def test_attach_engine_is_per_party_and_detaches_both(self,
                                                          small_keypair):
        from random import Random as _Random

        from repro.network.party import TwoPartySetting

        setting = TwoPartySetting.create(small_keypair, rng=_Random(43))
        c1_engine = make_engine(small_keypair.public_key, seed=44)
        c2_engine = make_engine(small_keypair.public_key, seed=45)
        setting.attach_engine(c1_engine, c2_engine)
        assert setting.evaluator.engine is c1_engine
        assert setting.decryptor.engine is c2_engine
        assert setting.engine is c1_engine
        setting.attach_engine(None)
        assert setting.evaluator.engine is None
        assert setting.decryptor.engine is None
