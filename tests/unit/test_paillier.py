"""Unit tests for the Paillier cryptosystem and its homomorphic properties."""

from __future__ import annotations

from random import Random

import pytest

from repro.crypto.paillier import (
    Ciphertext,
    OperationCounter,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)
from repro.exceptions import (
    DecryptionError,
    EncryptionError,
    KeyGenerationError,
    KeyMismatchError,
)


class TestKeyGeneration:
    def test_key_size_roughly_matches_request(self, small_keypair):
        assert small_keypair.key_size in (127, 128)

    def test_distinct_primes(self, small_keypair):
        private = small_keypair.private_key
        assert private.p != private.q
        assert private.p * private.q == small_keypair.public_key.n

    def test_rejects_tiny_key_size(self):
        with pytest.raises(KeyGenerationError):
            generate_keypair(8)

    def test_private_key_requires_matching_factors(self, small_keypair):
        public = small_keypair.public_key
        with pytest.raises(KeyGenerationError):
            PaillierPrivateKey(public, 17, 19)

    def test_public_key_rejects_tiny_modulus(self):
        with pytest.raises(KeyGenerationError):
            PaillierPublicKey(6)

    def test_deterministic_generation_with_seed(self):
        first = generate_keypair(128, Random(5))
        second = generate_keypair(128, Random(5))
        assert first.public_key.n == second.public_key.n


class TestEncryptDecrypt:
    def test_round_trip_small_values(self, public_key, private_key):
        for value in (0, 1, 2, 255, 10**6, 2**40):
            assert private_key.decrypt(public_key.encrypt(value)) == value

    def test_round_trip_negative_values(self, public_key, private_key):
        for value in (-1, -57, -(10**6)):
            assert private_key.decrypt(public_key.encrypt(value)) == value

    def test_encryption_is_probabilistic(self, public_key):
        first = public_key.encrypt(42)
        second = public_key.encrypt(42)
        assert first.value != second.value

    def test_explicit_nonce_is_deterministic(self, public_key):
        first = public_key.encrypt(42, r_value=12345)
        second = public_key.encrypt(42, r_value=12345)
        assert first.value == second.value

    def test_rejects_plaintext_at_or_above_modulus(self, public_key):
        with pytest.raises(EncryptionError):
            public_key.encrypt(public_key.n)

    def test_rejects_too_negative_plaintext(self, public_key):
        with pytest.raises(EncryptionError):
            public_key.encrypt(-(public_key.n // 2) - 1)

    def test_decrypt_rejects_out_of_range_ciphertext(self, public_key, private_key):
        with pytest.raises(DecryptionError):
            private_key.raw_decrypt(0)
        with pytest.raises(DecryptionError):
            private_key.raw_decrypt(public_key.nsquare + 1)

    def test_crt_and_naive_decryption_agree(self, public_key, private_key, rng):
        for _ in range(20):
            value = rng.randrange(0, 2**40)
            ciphertext = public_key.encrypt(value)
            assert private_key.raw_decrypt(ciphertext.value, use_crt=True) == \
                private_key.raw_decrypt(ciphertext.value, use_crt=False)

    def test_decrypt_requires_matching_key(self, public_key, private_key):
        other = generate_keypair(128, Random(77))
        foreign = other.public_key.encrypt(5)
        with pytest.raises(KeyMismatchError):
            private_key.decrypt(foreign)

    def test_raw_residue_decrypt_does_not_decode_sign(self, public_key, private_key):
        ciphertext = public_key.encrypt(-5)
        assert private_key.decrypt_raw_residue(ciphertext) == public_key.n - 5

    def test_vector_round_trip(self, public_key, private_key):
        values = [1, 2, 3, 500, 0]
        ciphertexts = public_key.encrypt_vector(values)
        assert private_key.decrypt_vector(ciphertexts) == values


class TestHomomorphicProperties:
    def test_addition_of_ciphertexts(self, public_key, private_key, rng):
        for _ in range(20):
            a = rng.randrange(0, 2**30)
            b = rng.randrange(0, 2**30)
            result = public_key.encrypt(a) + public_key.encrypt(b)
            assert private_key.decrypt(result) == a + b

    def test_addition_of_plaintext_constant(self, public_key, private_key):
        result = public_key.encrypt(100) + 23
        assert private_key.decrypt(result) == 123
        result = 23 + public_key.encrypt(100)
        assert private_key.decrypt(result) == 123

    def test_scalar_multiplication(self, public_key, private_key, rng):
        for _ in range(20):
            a = rng.randrange(0, 2**20)
            scalar = rng.randrange(0, 2**10)
            result = public_key.encrypt(a) * scalar
            assert private_key.decrypt(result) == a * scalar

    def test_scalar_multiplication_is_commutative_with_int(self, public_key,
                                                           private_key):
        assert private_key.decrypt(3 * public_key.encrypt(7)) == 21

    def test_subtraction(self, public_key, private_key):
        result = public_key.encrypt(59) - public_key.encrypt(58)
        assert private_key.decrypt(result) == 1
        result = public_key.encrypt(58) - public_key.encrypt(59)
        assert private_key.decrypt(result) == -1

    def test_subtraction_of_constant(self, public_key, private_key):
        assert private_key.decrypt(public_key.encrypt(10) - 4) == 6

    def test_negation(self, public_key, private_key):
        assert private_key.decrypt(-public_key.encrypt(13)) == -13

    def test_paper_example_negative_via_modulus(self, public_key, private_key):
        # The paper's convention: "N - x" is equivalent to "-x" under Z_N.
        enc = public_key.encrypt(7) * (public_key.n - 1)
        assert private_key.decrypt(enc) == -7

    def test_mixed_expression(self, public_key, private_key):
        # E(2*a + 3*b - c)
        a, b, c = 11, 7, 5
        expression = (public_key.encrypt(a) * 2 + public_key.encrypt(b) * 3
                      - public_key.encrypt(c))
        assert private_key.decrypt(expression) == 2 * a + 3 * b - c

    def test_randomize_preserves_plaintext_changes_ciphertext(self, public_key,
                                                              private_key):
        original = public_key.encrypt(321)
        refreshed = original.randomize()
        assert refreshed.value != original.value
        assert private_key.decrypt(refreshed) == 321

    def test_cannot_combine_ciphertexts_from_different_keys(self, public_key):
        other = generate_keypair(128, Random(31))
        with pytest.raises(KeyMismatchError):
            _ = public_key.encrypt(1) + other.public_key.encrypt(2)

    def test_addition_not_supported_with_float(self, public_key):
        with pytest.raises(TypeError):
            _ = public_key.encrypt(1) + 2.5


class TestSignedEncoding:
    def test_encode_decode_round_trip(self, public_key):
        for value in (0, 1, -1, 1000, -1000):
            assert public_key.decode_signed(public_key.encode_signed(value)) == value

    def test_encode_negative_uses_upper_range(self, public_key):
        encoded = public_key.encode_signed(-3)
        assert encoded == public_key.n - 3


class TestCiphertextObject:
    def test_equality_same_raw_value(self, public_key):
        cipher = public_key.encrypt(9, r_value=777)
        clone = Ciphertext(public_key, cipher.value)
        assert cipher == clone
        assert hash(cipher) == hash(clone)

    def test_inequality_for_fresh_encryptions(self, public_key):
        assert public_key.encrypt(9) != public_key.encrypt(9)

    def test_not_equal_to_other_types(self, public_key):
        assert public_key.encrypt(9) != 9


class TestOperationCounter:
    def test_counts_encryptions_and_decryptions(self):
        keypair = generate_keypair(128, Random(55))
        public, private = keypair.public_key, keypair.private_key
        public.counter.reset()
        private.counter.reset()
        ciphertexts = [public.encrypt(i) for i in range(5)]
        for ciphertext in ciphertexts:
            private.decrypt(ciphertext)
        assert public.counter.encryptions == 5
        assert private.counter.decryptions == 5

    def test_counts_exponentiations(self):
        keypair = generate_keypair(128, Random(56))
        public = keypair.public_key
        public.counter.reset()
        cipher = public.encrypt(3)
        _ = cipher * 10
        _ = cipher * 20
        assert public.counter.exponentiations == 2

    def test_snapshot_reset_and_merge(self):
        counter = OperationCounter(encryptions=2, decryptions=1)
        other = OperationCounter(encryptions=3, exponentiations=4)
        merged = counter.merged_with(other)
        assert merged.encryptions == 5
        assert merged.decryptions == 1
        assert merged.exponentiations == 4
        counter.reset()
        assert counter.snapshot() == {
            "encryptions": 0,
            "decryptions": 0,
            "exponentiations": 0,
            "homomorphic_additions": 0,
        }
