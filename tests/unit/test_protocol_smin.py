"""Unit tests for SMIN and SMIN_n (Algorithms 3 and 4)."""

from __future__ import annotations

from random import Random

import pytest

from repro.exceptions import ProtocolError
from repro.protocols.encoding import decrypt_bits, encrypt_bits
from repro.protocols.smin import SecureMinimum
from repro.protocols.sminn import SecureMinimumOfN


class TestSecureMinimum:
    def test_paper_example_5(self, setting, private_key):
        """Example 5: u=55, v=58, l=6 — the minimum is 55."""
        protocol = SecureMinimum(setting)
        result = protocol.run(
            encrypt_bits(setting.public_key, 55, 6),
            encrypt_bits(setting.public_key, 58, 6),
        )
        assert decrypt_bits(private_key, result) == 55

    @pytest.mark.parametrize("u,v", [
        (0, 0), (0, 1), (1, 0), (7, 7), (0, 63), (63, 0),
        (31, 32), (32, 31), (63, 63), (1, 62), (40, 41),
    ])
    def test_boundary_pairs(self, setting, private_key, u, v):
        protocol = SecureMinimum(setting)
        result = protocol.run(
            encrypt_bits(setting.public_key, u, 6),
            encrypt_bits(setting.public_key, v, 6),
        )
        assert decrypt_bits(private_key, result) == min(u, v)

    def test_random_pairs_various_widths(self, setting, private_key):
        rng = Random(2024)
        protocol = SecureMinimum(setting)
        for bit_length in (3, 5, 8):
            for _ in range(5):
                u = rng.randrange(0, 1 << bit_length)
                v = rng.randrange(0, 1 << bit_length)
                result = protocol.run(
                    encrypt_bits(setting.public_key, u, bit_length),
                    encrypt_bits(setting.public_key, v, bit_length),
                )
                assert decrypt_bits(private_key, result) == min(u, v)

    def test_output_bits_are_bits(self, setting, private_key):
        protocol = SecureMinimum(setting)
        result = protocol.run(
            encrypt_bits(setting.public_key, 21, 6),
            encrypt_bits(setting.public_key, 42, 6),
        )
        for encrypted_bit in result:
            assert private_key.decrypt(encrypted_bit) in (0, 1)

    def test_rejects_mismatched_lengths(self, setting):
        protocol = SecureMinimum(setting)
        with pytest.raises(ProtocolError):
            protocol.run(
                encrypt_bits(setting.public_key, 1, 4),
                encrypt_bits(setting.public_key, 1, 5),
            )

    def test_rejects_empty_vectors(self, setting):
        protocol = SecureMinimum(setting)
        with pytest.raises(ProtocolError):
            protocol.run([], [])

    def test_repeated_runs_are_consistent(self, setting, private_key):
        """The random functionality F must never change the functional output."""
        protocol = SecureMinimum(setting)
        for _ in range(8):
            result = protocol.run(
                encrypt_bits(setting.public_key, 13, 6),
                encrypt_bits(setting.public_key, 29, 6),
            )
            assert decrypt_bits(private_key, result) == 13

    def test_p2_cannot_read_comparison_from_alpha_alone(self, setting, private_key):
        """alpha's meaning depends on P1's secret coin, so over many runs with
        the same inputs both alpha values must occur (otherwise P2 could infer
        the comparison outcome)."""
        protocol = SecureMinimum(setting)
        alphas = set()
        for _ in range(20):
            setting.channel.transcript.clear()
            protocol.run(
                encrypt_bits(setting.public_key, 5, 4),
                encrypt_bits(setting.public_key, 9, 4),
            )
            # The second element of P2's reply is E(alpha).
            replies = list(setting.channel.transcript_payloads("C2"))
            smin_reply = replies[-1]
            alphas.add(private_key.decrypt(smin_reply[1]))
            if len(alphas) == 2:
                break
        assert alphas == {0, 1}


class TestSecureMinimumOfN:
    def test_minimum_of_six_values(self, setting, private_key):
        protocol = SecureMinimumOfN(setting)
        values = [13, 4, 55, 9, 22, 4]
        result = protocol.run(
            [encrypt_bits(setting.public_key, v, 6) for v in values]
        )
        assert decrypt_bits(private_key, result) == 4

    def test_single_value(self, setting, private_key):
        protocol = SecureMinimumOfN(setting)
        result = protocol.run([encrypt_bits(setting.public_key, 37, 6)])
        assert decrypt_bits(private_key, result) == 37

    def test_two_values(self, setting, private_key):
        protocol = SecureMinimumOfN(setting)
        result = protocol.run([
            encrypt_bits(setting.public_key, 50, 6),
            encrypt_bits(setting.public_key, 3, 6),
        ])
        assert decrypt_bits(private_key, result) == 3

    @pytest.mark.parametrize("count", [3, 5, 7, 8])
    def test_random_lists_odd_and_even_counts(self, setting, private_key, count):
        rng = Random(count)
        protocol = SecureMinimumOfN(setting)
        values = [rng.randrange(0, 64) for _ in range(count)]
        result = protocol.run(
            [encrypt_bits(setting.public_key, v, 6) for v in values]
        )
        assert decrypt_bits(private_key, result) == min(values)

    def test_chain_topology_matches_tournament(self, setting, private_key):
        values = [45, 12, 33, 12, 60]
        encrypted = [encrypt_bits(setting.public_key, v, 6) for v in values]
        tournament = SecureMinimumOfN(setting, topology="tournament").run(encrypted)
        chain = SecureMinimumOfN(setting, topology="chain").run(encrypted)
        assert decrypt_bits(private_key, tournament) == min(values)
        assert decrypt_bits(private_key, chain) == min(values)

    def test_all_equal_values(self, setting, private_key):
        protocol = SecureMinimumOfN(setting)
        result = protocol.run(
            [encrypt_bits(setting.public_key, 17, 6) for _ in range(4)]
        )
        assert decrypt_bits(private_key, result) == 17

    def test_rejects_empty_input(self, setting):
        protocol = SecureMinimumOfN(setting)
        with pytest.raises(ProtocolError):
            protocol.run([])

    def test_rejects_inconsistent_bit_lengths(self, setting):
        protocol = SecureMinimumOfN(setting)
        with pytest.raises(ProtocolError):
            protocol.run([
                encrypt_bits(setting.public_key, 1, 4),
                encrypt_bits(setting.public_key, 1, 6),
            ])

    def test_rejects_unknown_topology(self, setting):
        with pytest.raises(ValueError):
            SecureMinimumOfN(setting, topology="ring")

    def test_invocation_and_depth_helpers(self):
        assert SecureMinimumOfN.smin_invocations(1) == 0
        assert SecureMinimumOfN.smin_invocations(6) == 5
        assert SecureMinimumOfN.tree_depth(1) == 0
        assert SecureMinimumOfN.tree_depth(2) == 1
        assert SecureMinimumOfN.tree_depth(6) == 3
        assert SecureMinimumOfN.tree_depth(8) == 3
