"""Unit tests for the plaintext and ASPE baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.aspe import ASPEKey, ASPESystem, known_plaintext_attack
from repro.baselines.plaintext import PlaintextKNNSystem
from repro.db.datasets import synthetic_uniform
from repro.db.knn import LinearScanKNN
from repro.exceptions import ConfigurationError, QueryError


@pytest.fixture(scope="module")
def baseline_table():
    return synthetic_uniform(n_records=60, dimensions=4, distance_bits=14, seed=8)


class TestPlaintextKNNSystem:
    def test_linear_engine_matches_oracle(self, baseline_table):
        system = PlaintextKNNSystem(baseline_table, engine="linear")
        oracle = LinearScanKNN(baseline_table)
        query = [5, 5, 5, 5]
        assert system.query(query, 3) == [r.record.values
                                          for r in oracle.query(query, 3)]

    def test_kdtree_engine_matches_linear(self, baseline_table):
        linear = PlaintextKNNSystem(baseline_table, engine="linear")
        kdtree = PlaintextKNNSystem(baseline_table, engine="kdtree")
        query = [9, 0, 7, 2]
        assert linear.query(query, 5) == kdtree.query(query, 5)

    def test_report_populated(self, baseline_table):
        system = PlaintextKNNSystem(baseline_table)
        system.query([1, 2, 3, 4], 2)
        report = system.last_report
        assert report is not None
        assert report.n_records == len(baseline_table)
        assert report.k == 2
        assert report.wall_time_seconds >= 0

    def test_unknown_engine_rejected(self, baseline_table):
        with pytest.raises(ConfigurationError):
            PlaintextKNNSystem(baseline_table, engine="hash")


class TestASPE:
    def test_key_generation_is_invertible(self):
        key = ASPEKey.generate(5, seed=1)
        assert key.dimensions == 5
        identity = key.matrix @ key.inverse
        assert np.allclose(identity, np.eye(6), atol=1e-8)

    def test_aspe_answers_knn_correctly(self, baseline_table):
        """ASPE preserves distance ordering, so its kNN answers are exact."""
        aspe = ASPESystem(baseline_table, seed=5)
        oracle = PlaintextKNNSystem(baseline_table)
        for query in ([0, 0, 0, 0], [10, 3, 8, 1], [2, 9, 9, 2]):
            assert aspe.query(query, 4) == oracle.query(query, 4)

    def test_encrypted_tuples_hide_plaintext_scale(self, baseline_table):
        """Encrypted tuples are real-valued mixtures, not the raw integers."""
        aspe = ASPESystem(baseline_table, seed=6)
        raw = np.array([record.values for record in baseline_table.records],
                       dtype=float)
        encrypted = aspe.encrypted_database.encrypted_points[:, :4]
        assert not np.allclose(encrypted, raw)

    def test_query_encryption_is_randomized(self, baseline_table):
        aspe = ASPESystem(baseline_table, seed=7)
        first = aspe.encrypt_query([1, 2, 3, 4])
        second = aspe.encrypt_query([1, 2, 3, 4])
        assert not np.allclose(first, second)

    def test_invalid_queries_rejected(self, baseline_table):
        aspe = ASPESystem(baseline_table, seed=8)
        with pytest.raises(QueryError):
            aspe.query([1, 2, 3], 2)
        with pytest.raises(QueryError):
            aspe.query([1, 2, 3, 4], 0)

    def test_known_plaintext_attack_recovers_database(self, baseline_table):
        """The attack the paper cites: d+1 known pairs break the whole table."""
        aspe = ASPESystem(baseline_table, seed=9)
        recovered = known_plaintext_attack(aspe, known_indices=list(range(5)))
        true_values = np.array([record.values for record in baseline_table.records],
                               dtype=float)
        assert np.allclose(recovered, true_values, atol=1e-6)

    def test_attack_needs_enough_pairs(self, baseline_table):
        aspe = ASPESystem(baseline_table, seed=10)
        with pytest.raises(ConfigurationError):
            known_plaintext_attack(aspe, known_indices=[0, 1])
