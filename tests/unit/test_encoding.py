"""Unit tests for the bit-vector encoding helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import DomainError
from repro.protocols.encoding import (
    bits_to_int,
    decrypt_bits,
    encrypt_bits,
    int_to_bits,
    max_value_bits,
    recompose_from_encrypted_bits,
)


class TestIntToBits:
    def test_known_decompositions(self):
        assert int_to_bits(55, 6) == [1, 1, 0, 1, 1, 1]
        assert int_to_bits(58, 6) == [1, 1, 1, 0, 1, 0]
        assert int_to_bits(0, 4) == [0, 0, 0, 0]
        assert int_to_bits(15, 4) == [1, 1, 1, 1]

    def test_round_trip(self):
        for value in range(64):
            assert bits_to_int(int_to_bits(value, 6)) == value

    def test_leading_zero_padding(self):
        assert int_to_bits(1, 8) == [0] * 7 + [1]

    def test_rejects_out_of_range(self):
        with pytest.raises(DomainError):
            int_to_bits(16, 4)
        with pytest.raises(DomainError):
            int_to_bits(-1, 4)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(DomainError):
            int_to_bits(0, 0)

    def test_bits_to_int_rejects_non_bits(self):
        with pytest.raises(DomainError):
            bits_to_int([0, 2, 1])

    def test_max_value_bits(self):
        assert bits_to_int(max_value_bits(6)) == 63
        with pytest.raises(DomainError):
            max_value_bits(0)


class TestEncryptedBitVectors:
    def test_encrypt_decrypt_round_trip(self, public_key, private_key):
        for value in (0, 1, 37, 63):
            bits = encrypt_bits(public_key, value, 6)
            assert decrypt_bits(private_key, bits) == value

    def test_recompose_matches_value(self, public_key, private_key):
        for value in (0, 1, 5, 42, 255):
            bits = encrypt_bits(public_key, value, 8)
            recomposed = recompose_from_encrypted_bits(bits)
            assert private_key.decrypt(recomposed) == value

    def test_recompose_rejects_empty(self):
        with pytest.raises(DomainError):
            recompose_from_encrypted_bits([])

    def test_recompose_is_weighted_sum(self, public_key, private_key):
        """Recomposition of the all-ones vector gives 2**l - 1."""
        bits = encrypt_bits(public_key, 15, 4)
        assert private_key.decrypt(recompose_from_encrypted_bits(bits)) == 15
