"""Unit tests for the core role/cloud components (outside full protocol runs)."""

from __future__ import annotations

from random import Random

import pytest

from repro.core.cloud import CloudC1, CloudC2, FederatedCloud
from repro.core.roles import ClientCostReport, DataOwner, QueryClient, ResultShares
from repro.core.sknn_base import SkNNRunReport
from repro.db.datasets import heart_disease_table, synthetic_uniform
from repro.db.encrypted_table import EncryptedTable
from repro.exceptions import ConfigurationError, QueryError
from repro.network.channel import DuplexChannel
from repro.network.latency import FixedLatency
from repro.network.stats import ProtocolRunStats


class TestDataOwner:
    def test_generates_keys_of_requested_size(self, tiny_table):
        owner = DataOwner(tiny_table, key_size=128, rng=Random(1))
        assert owner.keypair.key_size in (127, 128)

    def test_reuses_supplied_keypair(self, tiny_table, small_keypair):
        owner = DataOwner(tiny_table, keypair=small_keypair)
        assert owner.public_key == small_keypair.public_key

    def test_encrypt_database_round_trips(self, tiny_table, small_keypair):
        owner = DataOwner(tiny_table, keypair=small_keypair, rng=Random(2))
        encrypted = owner.encrypt_database()
        assert len(encrypted) == len(tiny_table)
        decrypted = encrypted.decrypt(small_keypair.private_key)
        assert decrypted.row_values() == tiny_table.row_values()

    def test_distance_bit_length_comes_from_schema(self):
        table = heart_disease_table(include_diagnosis=False)
        owner = DataOwner(table, key_size=128, rng=Random(3))
        assert owner.distance_bit_length() == table.schema.distance_bit_length()


class TestQueryClient:
    def test_rejects_nonpositive_dimensions(self, public_key):
        with pytest.raises(ConfigurationError):
            QueryClient(public_key, dimensions=0)

    def test_encrypt_query_checks_arity(self, public_key):
        client = QueryClient(public_key, dimensions=3, rng=Random(4))
        with pytest.raises(QueryError):
            client.encrypt_query([1, 2])

    def test_encrypt_query_records_cost(self, public_key):
        client = QueryClient(public_key, dimensions=2, rng=Random(5))
        client.encrypt_query([1, 2])
        assert client.last_cost.encrypt_query_seconds > 0

    def test_reconstruct_inverts_masking(self, small_keypair):
        public = small_keypair.public_key
        client = QueryClient(public, dimensions=2, rng=Random(6))
        true_record = (17, 23)
        masks = [5, public.n - 3]          # include a mask that wraps mod N
        masked = [(value + mask) % public.n
                  for value, mask in zip(true_record, masks)]
        shares = ResultShares(masks_from_c1=[masks],
                              masked_values_from_c2=[masked],
                              modulus=public.n)
        assert client.reconstruct(shares) == [true_record]

    def test_client_cost_report_totals(self):
        report = ClientCostReport(encrypt_query_seconds=0.5,
                                  reconstruct_seconds=0.25)
        assert report.total_seconds == 0.75


class TestFederatedCloud:
    def test_deploy_assigns_keys_correctly(self, small_keypair):
        cloud = FederatedCloud.deploy(small_keypair, rng=Random(7))
        assert cloud.c1.public_key == small_keypair.public_key
        assert cloud.c2.private_key.public_key == small_keypair.public_key
        assert not hasattr(cloud.c1, "private_key")

    def test_c1_requires_hosted_database(self, small_keypair):
        cloud = FederatedCloud.deploy(small_keypair, rng=Random(8))
        with pytest.raises(ConfigurationError):
            _ = cloud.c1.encrypted_table

    def test_record_count_after_hosting(self, small_keypair, tiny_table):
        cloud = FederatedCloud.deploy(small_keypair, rng=Random(9))
        cloud.c1.host_database(EncryptedTable.encrypt_table(
            tiny_table, small_keypair.public_key))
        assert cloud.c1.record_count == len(tiny_table)

    def test_setting_view_shares_channel(self, small_keypair):
        cloud = FederatedCloud.deploy(small_keypair, rng=Random(10))
        setting = cloud.setting
        assert setting.evaluator is cloud.c1
        assert setting.decryptor is cloud.c2
        assert setting.channel is cloud.channel

    def test_reset_counters(self, small_keypair):
        cloud = FederatedCloud.deploy(small_keypair, rng=Random(11))
        cloud.c1.encrypt(5)
        cloud.reset_counters()
        assert cloud.c1.public_key.counter.encryptions == 0

    def test_latency_model_accumulates_delay(self, small_keypair, tiny_table):
        """With a non-zero latency model the channel tracks simulated delay."""
        from repro.core.roles import DataOwner, QueryClient
        from repro.core.sknn_basic import SkNNBasic

        cloud = FederatedCloud.deploy(small_keypair, rng=Random(12),
                                      latency_model=FixedLatency(0.001))
        owner = DataOwner(tiny_table, keypair=small_keypair, rng=Random(13))
        cloud.c1.host_database(owner.encrypt_database())
        client = QueryClient(small_keypair.public_key, tiny_table.dimensions,
                             rng=Random(14))
        SkNNBasic(cloud).run(client.encrypt_query([1, 1, 1]), 1)
        assert cloud.channel.simulated_delay_seconds > 0


class TestCloudServers:
    def test_c1_and_c2_are_channel_endpoints(self, small_keypair):
        channel = DuplexChannel("C1", "C2")
        c1 = CloudC1(small_keypair.public_key, channel)
        c2 = CloudC2(small_keypair.private_key, channel)
        c1.send("ping", tag="test")
        assert c2.receive(expected_tag="test") == "ping"


class TestRunReports:
    def test_report_row_contains_parameters(self):
        stats = ProtocolRunStats(protocol="SkNNb", c1_encryptions=10,
                                 c2_decryptions=4, messages=3)
        report = SkNNRunReport(protocol="SkNNb", n_records=100, dimensions=6,
                               k=5, key_size=512, distance_bits=None,
                               wall_time_seconds=1.5, stats=stats,
                               phase_seconds={"distance": 1.0})
        row = report.as_row()
        assert row["n"] == 100
        assert row["k"] == 5
        assert row["l"] == 0
        assert row["phase_distance"] == 1.0
        assert row["encryptions"] == 10

    def test_synthetic_workload_sizes_match_parameters(self):
        table = synthetic_uniform(n_records=17, dimensions=5, distance_bits=10,
                                  seed=1)
        assert len(table) == 17
        assert table.dimensions == 5
