"""Unit tests for the network substrate: channels, parties, stats, latency."""

from __future__ import annotations

from random import Random

import pytest

from repro.exceptions import ChannelError, ConfigurationError
from repro.network.channel import DuplexChannel, Message
from repro.network.latency import BandwidthLatency, FixedLatency, ZeroLatency
from repro.network.party import DecryptorParty, EvaluatorParty, TwoPartySetting
from repro.network.stats import ProtocolRunStats, TrafficStats


class TestDuplexChannel:
    def test_send_receive_round_trip(self):
        channel = DuplexChannel("C1", "C2")
        channel.send("C1", 42, tag="answer")
        assert channel.receive("C2", expected_tag="answer") == 42

    def test_fifo_ordering(self):
        channel = DuplexChannel("C1", "C2")
        for value in range(5):
            channel.send("C1", value)
        assert [channel.receive("C2") for _ in range(5)] == list(range(5))

    def test_receive_without_message_raises(self):
        channel = DuplexChannel()
        with pytest.raises(ChannelError):
            channel.receive("C1")

    def test_unknown_endpoint_raises(self):
        channel = DuplexChannel()
        with pytest.raises(ChannelError):
            channel.send("C3", 1)
        with pytest.raises(ChannelError):
            channel.receive("C3")
        with pytest.raises(ChannelError):
            channel.pending("C3")

    def test_tag_mismatch_raises(self):
        channel = DuplexChannel()
        channel.send("C1", 1, tag="a")
        with pytest.raises(ChannelError):
            channel.receive("C2", expected_tag="b")

    def test_pending_counts(self):
        channel = DuplexChannel()
        assert channel.pending("C2") == 0
        channel.send("C1", 1)
        channel.send("C1", 2)
        assert channel.pending("C2") == 2
        channel.receive("C2")
        assert channel.pending("C2") == 1

    def test_traffic_accounting_for_integers(self):
        channel = DuplexChannel()
        channel.send("C1", [1, 2, 3])
        stats = channel.traffic["C1"]
        assert stats.messages == 1
        assert stats.plaintext_items == 3
        assert stats.ciphertexts == 0

    def test_traffic_accounting_for_ciphertexts(self, public_key):
        channel = DuplexChannel()
        channel.send("C1", [public_key.encrypt(1), public_key.encrypt(2)])
        stats = channel.traffic["C1"]
        assert stats.ciphertexts == 2
        assert stats.bytes_transferred > 0

    def test_traffic_accounting_for_nested_and_misc_payloads(self, public_key):
        channel = DuplexChannel()
        channel.send("C1", {"a": public_key.encrypt(1), "b": [1, "text", None]})
        stats = channel.traffic["C1"]
        assert stats.ciphertexts == 1
        assert stats.plaintext_items >= 2

    def test_unsupported_payload_raises(self):
        channel = DuplexChannel()
        with pytest.raises(ChannelError):
            channel.send("C1", object())

    def test_transcript_records_all_messages(self):
        channel = DuplexChannel()
        channel.send("C1", 1, tag="x")
        channel.send("C2", 2, tag="y")
        assert len(channel.transcript) == 2
        assert isinstance(channel.transcript[0], Message)
        assert [m.tag for m in channel.transcript] == ["x", "y"]
        c1_payloads = list(channel.transcript_payloads("C1"))
        assert c1_payloads == [1]

    def test_reset_accounting_requires_drained_queues(self):
        channel = DuplexChannel()
        channel.send("C1", 1)
        with pytest.raises(ChannelError):
            channel.reset_accounting()
        channel.receive("C2")
        channel.reset_accounting()
        assert channel.total_traffic().messages == 0
        assert channel.transcript == []

    def test_total_traffic_merges_directions(self):
        channel = DuplexChannel()
        channel.send("C1", 1)
        channel.send("C2", 2)
        assert channel.total_traffic().messages == 2


class TestLatencyModels:
    def test_zero_latency(self):
        assert ZeroLatency().delay_for_message(10_000) == 0.0

    def test_fixed_latency(self):
        assert FixedLatency(0.25).delay_for_message(1) == 0.25

    def test_bandwidth_latency_scales_with_size(self):
        model = BandwidthLatency(latency_seconds=0.001,
                                 bandwidth_bytes_per_second=1000)
        assert model.delay_for_message(0) == pytest.approx(0.001)
        assert model.delay_for_message(1000) == pytest.approx(1.001)

    def test_channel_accumulates_simulated_delay(self):
        channel = DuplexChannel(latency_model=FixedLatency(0.5))
        channel.send("C1", 1)
        channel.send("C2", 2)
        assert channel.simulated_delay_seconds == pytest.approx(1.0)


class TestTrafficStats:
    def test_record_and_snapshot(self):
        stats = TrafficStats()
        stats.record(ciphertexts=2, plaintext_items=1, payload_bytes=64)
        assert stats.snapshot() == {
            "messages": 1,
            "ciphertexts": 2,
            "plaintext_items": 1,
            "bytes_transferred": 64,
        }

    def test_merge_and_reset(self):
        first = TrafficStats(messages=1, ciphertexts=2, bytes_transferred=10)
        second = TrafficStats(messages=3, plaintext_items=4, bytes_transferred=5)
        merged = first.merged_with(second)
        assert merged.messages == 4
        assert merged.ciphertexts == 2
        assert merged.plaintext_items == 4
        assert merged.bytes_transferred == 15
        first.reset()
        assert first.messages == 0


class TestProtocolRunStats:
    def test_totals_and_row(self):
        stats = ProtocolRunStats(protocol="SM", c1_encryptions=2, c2_encryptions=1,
                                 c2_decryptions=2, c1_exponentiations=3,
                                 messages=2, extra={"note": 1.0})
        assert stats.total_encryptions == 3
        assert stats.total_decryptions == 2
        assert stats.total_exponentiations == 3
        row = stats.as_row()
        assert row["protocol"] == "SM"
        assert row["note"] == 1.0


class TestParties:
    def test_party_must_be_channel_endpoint(self, public_key):
        channel = DuplexChannel("C1", "C2")
        with pytest.raises(ConfigurationError):
            EvaluatorParty("C3", public_key, channel)

    def test_party_send_receive(self, small_keypair):
        channel = DuplexChannel("C1", "C2")
        evaluator = EvaluatorParty("C1", small_keypair.public_key, channel)
        decryptor = DecryptorParty("C2", small_keypair.private_key, channel)
        evaluator.send("hello", tag="greeting")
        assert decryptor.receive(expected_tag="greeting") == "hello"

    def test_decryptor_decrypts_both_ways(self, small_keypair):
        channel = DuplexChannel("C1", "C2")
        decryptor = DecryptorParty("C2", small_keypair.private_key, channel)
        cipher = small_keypair.public_key.encrypt(-9)
        assert decryptor.decrypt_signed(cipher) == -9
        assert decryptor.decrypt_residue(cipher) == small_keypair.public_key.n - 9

    def test_random_helpers_in_range(self, setting):
        for _ in range(50):
            assert 1 <= setting.evaluator.random_nonzero() < setting.public_key.n
            assert 0 <= setting.evaluator.random_in_zn() < setting.public_key.n

    def test_two_party_setting_create(self, small_keypair):
        setting = TwoPartySetting.create(small_keypair, rng=Random(0))
        assert setting.evaluator.name == "C1"
        assert setting.decryptor.name == "C2"
        assert setting.public_key == small_keypair.public_key

    def test_reset_counters(self, setting):
        setting.evaluator.encrypt(5)
        setting.reset_counters()
        assert setting.public_key.counter.encryptions == 0
        assert setting.channel.total_traffic().messages == 0

    def test_party_encrypt_uses_shared_key(self, setting, small_keypair):
        cipher = setting.evaluator.encrypt(77)
        assert small_keypair.private_key.decrypt(cipher) == 77
