"""Unit tests for the SBD, SBOR and SBXOR sub-protocols."""

from __future__ import annotations

import pytest

from repro.exceptions import ProtocolError
from repro.protocols.encoding import decrypt_bits
from repro.protocols.sbd import SecureBitDecomposition
from repro.protocols.sbor import SecureBitOr, SecureBitXor


class TestSecureBitDecomposition:
    def test_paper_example_4(self, setting, private_key):
        """Example 4: z=55, l=6 must give bits <1,1,0,1,1,1> (MSB first)."""
        protocol = SecureBitDecomposition(setting, bit_length=6)
        bits = protocol.run(setting.public_key.encrypt(55))
        decrypted = [private_key.decrypt(b) for b in bits]
        assert decrypted == [1, 1, 0, 1, 1, 1]

    def test_round_trip_all_values_small_domain(self, setting, private_key):
        protocol = SecureBitDecomposition(setting, bit_length=4)
        for value in range(16):
            bits = protocol.run(setting.public_key.encrypt(value))
            assert decrypt_bits(private_key, bits) == value

    def test_round_trip_random_values(self, setting, private_key, rng):
        bit_length = 12
        protocol = SecureBitDecomposition(setting, bit_length=bit_length)
        for _ in range(10):
            value = rng.randrange(0, 1 << bit_length)
            bits = protocol.run(setting.public_key.encrypt(value))
            assert decrypt_bits(private_key, bits) == value

    def test_zero_and_maximum(self, setting, private_key):
        protocol = SecureBitDecomposition(setting, bit_length=8)
        assert decrypt_bits(private_key,
                            protocol.run(setting.public_key.encrypt(0))) == 0
        assert decrypt_bits(private_key,
                            protocol.run(setting.public_key.encrypt(255))) == 255

    def test_output_length_matches_bit_length(self, setting):
        protocol = SecureBitDecomposition(setting, bit_length=9)
        bits = protocol.run(setting.public_key.encrypt(5))
        assert len(bits) == 9

    def test_each_output_is_a_bit(self, setting, private_key):
        protocol = SecureBitDecomposition(setting, bit_length=7)
        bits = protocol.run(setting.public_key.encrypt(93))
        for encrypted_bit in bits:
            assert private_key.decrypt(encrypted_bit) in (0, 1)

    def test_rejects_nonpositive_bit_length(self, setting):
        with pytest.raises(ProtocolError):
            SecureBitDecomposition(setting, bit_length=0)

    def test_rejects_bit_length_close_to_key_size(self, setting):
        too_large = setting.public_key.n.bit_length()
        with pytest.raises(ProtocolError):
            SecureBitDecomposition(setting, bit_length=too_large)

    def test_p2_never_sees_the_value(self, setting, private_key):
        """Every value C1 sends during SBD is additively masked."""
        value = 37
        protocol = SecureBitDecomposition(setting, bit_length=6)
        setting.channel.transcript.clear()
        protocol.run(setting.public_key.encrypt(value))
        for payload in setting.channel.transcript_payloads("C1"):
            decrypted = private_key.decrypt_raw_residue(payload)
            # The masked value could coincide with the true value only with
            # negligible probability; a direct equality would indicate the
            # mask was not applied.
            assert decrypted != value


class TestSecureBitOr:
    def test_truth_table(self, setting, private_key):
        protocol = SecureBitOr(setting)
        for a in (0, 1):
            for b in (0, 1):
                result = protocol.run(setting.public_key.encrypt(a),
                                      setting.public_key.encrypt(b))
                assert private_key.decrypt(result) == (a | b)

    def test_or_with_one_saturates(self, setting, private_key):
        """OR with 1 always yields 1 — the property SkNN_m's step 3(e) uses."""
        protocol = SecureBitOr(setting)
        for bit in (0, 1):
            result = protocol.run(setting.public_key.encrypt(1),
                                  setting.public_key.encrypt(bit))
            assert private_key.decrypt(result) == 1

    def test_or_with_zero_is_identity(self, setting, private_key):
        protocol = SecureBitOr(setting)
        for bit in (0, 1):
            result = protocol.run(setting.public_key.encrypt(0),
                                  setting.public_key.encrypt(bit))
            assert private_key.decrypt(result) == bit


class TestSecureBitXor:
    def test_truth_table(self, setting, private_key):
        protocol = SecureBitXor(setting)
        for a in (0, 1):
            for b in (0, 1):
                result = protocol.run(setting.public_key.encrypt(a),
                                      setting.public_key.encrypt(b))
                assert private_key.decrypt(result) == (a ^ b)

    def test_xor_from_precomputed_product(self, setting, private_key):
        protocol = SecureBitXor(setting)
        enc_a = setting.public_key.encrypt(1)
        enc_b = setting.public_key.encrypt(1)
        enc_product = setting.public_key.encrypt(1)  # 1 AND 1
        result = protocol.xor_from_product(enc_a, enc_b, enc_product)
        assert private_key.decrypt(result) == 0
