"""Unit tests for the ``repro.telemetry`` package.

Covers the four modules in isolation: the metrics registry (types, labels,
collectors, Prometheus exposition), the tracer (context propagation, wire
context, remote stitching, collector bounds), structured/slow-query logs,
and the stdlib ``/metrics`` HTTP listener.
"""

from __future__ import annotations

import json
import logging
import threading
import urllib.request

import pytest

from repro.telemetry import logs as telemetry_logs
from repro.telemetry import tracing
from repro.telemetry.httpd import MetricsHTTPServer, parse_listen_address
from repro.telemetry.metrics import MetricsRegistry


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_labelled_children_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("steps_total", "Steps.", ("tag",))
        counter.inc(tag="SM.go")
        counter.inc(3, tag="SBD.go")
        assert counter.labels("SM.go").value == 1
        assert counter.labels(tag="SBD.go").value == 3
        assert counter.value == 4  # family value sums every label set

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c", "").inc(-1)

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help")
        assert registry.counter("c", "different help") is first

    def test_conflicting_reregistration_fails_loudly(self):
        registry = MetricsRegistry()
        registry.counter("c", "", ("tag",))
        with pytest.raises(ValueError):
            registry.counter("c", "", ("other",))
        with pytest.raises(ValueError):
            registry.gauge("c", "")

    def test_mismatched_labels_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", "", ("a", "b"))
        with pytest.raises(ValueError):
            counter.labels("only-one")


class TestGaugeAndHistogram:
    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Queue depth.")
        gauge.set(7)
        gauge.labels().inc(2)
        gauge.labels().dec(4)
        assert gauge.value == 5

    def test_histogram_snapshot_has_count_sum_mean(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", "Latency.",
                                       ("protocol",))
        for value in (0.002, 0.004, 0.03):
            histogram.observe(value, protocol="SkNNb")
        snap = histogram.snapshot()["SkNNb"]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(0.036)
        assert snap["mean"] == pytest.approx(0.012)

    def test_histogram_buckets_are_cumulative_in_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert 'h_bucket{le="0.1"} 1' in text
        assert 'h_bucket{le="1"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_sum" in text and "h_count 3" in text


class TestExposition:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_queries_total", "Queries.", ("protocol",)) \
            .inc(protocol="SkNNm")
        text = registry.render_prometheus()
        assert "# HELP repro_queries_total Queries." in text
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{protocol="SkNNm"} 1' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", "", ("tag",)).inc(tag='a"b\\c\nd')
        assert r'tag="a\"b\\c\nd"' in registry.render_prometheus()

    def test_collectors_run_at_scrape_time_only(self):
        registry = MetricsRegistry()
        calls = []

        def collect(target):
            calls.append(1)
            target.gauge("pool_fill", "").set(42)

        registry.add_collector(collect)
        assert calls == []  # registration alone never runs it
        assert "pool_fill 42" in registry.render_prometheus()
        registry.snapshot()
        assert len(calls) == 2
        registry.remove_collector(collect)
        registry.render_prometheus()
        assert len(calls) == 2

    def test_broken_collector_does_not_break_scraping(self):
        registry = MetricsRegistry()
        registry.add_collector(lambda _: 1 / 0)
        registry.counter("ok_total", "").inc()
        assert "ok_total 1" in registry.render_prometheus()

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", "help!", ("x",)).inc(x="1")
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "help": "help!",
                             "labels": ["x"], "values": {"1": 1.0}}


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------

class TestTracing:
    def test_span_without_active_trace_is_shared_noop(self):
        tracer = tracing.Tracer()
        first = tracer.span("anything")
        second = tracer.span("else")
        assert first is second  # the shared no-op: zero allocation when off
        with first as active:
            active.set_attribute("ignored", 1)
        assert tracer.pending_traces() == 0

    def test_trace_records_root_and_nested_child(self):
        tracer = tracing.Tracer()
        with tracer.trace("query.SkNNb", party="C1", k=2) as root:
            with tracer.span("SSED.scan") as child:
                pass
        spans = tracer.take(root.trace_id)
        assert [s.name for s in spans] == ["SSED.scan", "query.SkNNb"]
        scan, query = spans
        assert scan.trace_id == query.trace_id == root.trace_id
        assert scan.parent_id == query.span_id
        assert query.parent_id is None
        assert query.party == scan.party == "C1"
        assert query.attributes == {"k": 2}
        assert child.span_id == scan.span_id

    def test_take_drains(self):
        tracer = tracing.Tracer()
        with tracer.trace("t") as root:
            pass
        assert len(tracer.take(root.trace_id)) == 1
        assert tracer.take(root.trace_id) == []

    def test_wire_context_inside_and_outside_trace(self):
        assert tracing.current_wire_context() is None
        with tracing.trace("query") as root:
            context = tracing.current_wire_context()
            assert context == [root.trace_id, root.span_id]
        assert tracing.current_wire_context() is None
        tracing.get_tracer().take(root.trace_id)

    def test_remote_span_stitches_into_the_senders_trace(self):
        tracer = tracing.Tracer()
        wire_context = ["a" * 32, "b" * 16]
        with tracer.remote_span("p2.SM.go", wire_context, party="C2"):
            pass
        (span,) = tracer.take("a" * 32)
        assert span.trace_id == "a" * 32
        assert span.parent_id == "b" * 16
        assert span.party == "C2"

    def test_remote_span_without_context_is_noop(self):
        tracer = tracing.Tracer()
        assert tracer.remote_span("x", None) is tracer.span("y")

    def test_exceptions_are_recorded_and_context_restored(self):
        tracer = tracing.Tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("boom") as root:
                raise RuntimeError("nope")
        assert tracing.current_wire_context() is None
        (span,) = tracer.take(root.trace_id)
        assert span.attributes["error"] == "RuntimeError"

    def test_trace_ids_are_128_bit_hex_and_unique(self):
        ids = {tracing.new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 32
            int(trace_id, 16)

    def test_collector_evicts_oldest_trace_beyond_bound(self):
        tracer = tracing.Tracer()
        first_ids = []
        for index in range(tracing.MAX_TRACKED_TRACES + 5):
            with tracer.trace(f"t{index}") as root:
                pass
            first_ids.append(root.trace_id)
        assert tracer.pending_traces() == tracing.MAX_TRACKED_TRACES
        assert tracer.take(first_ids[0]) == []   # evicted
        assert len(tracer.take(first_ids[-1])) == 1

    def test_span_payload_roundtrip_and_sorted_trace_payload(self):
        tracer = tracing.Tracer()
        with tracer.trace("query2", party="C1") as root:
            pass
        spans = tracer.take(root.trace_id)
        restored = tracing.Span.from_payload(spans[0].as_payload())
        assert restored == spans[0]
        payload = tracing.trace_payload(root.trace_id, [
            {"name": "b", "start": 2.0}, {"name": "a", "start": 1.0}])
        assert [row["name"] for row in payload["spans"]] == ["a", "b"]
        assert payload["trace_id"] == root.trace_id


# ---------------------------------------------------------------------------
# logs
# ---------------------------------------------------------------------------

class TestSlowQueryLog:
    def test_threshold(self):
        log = telemetry_logs.SlowQueryLog(threshold_seconds=0.5,
                                          logger=logging.getLogger("t.slow"))
        assert not log.observe(0.4, protocol="SkNNb")
        assert log.observe(0.6, protocol="SkNNm", trace_id="ff", k=5)
        snap = log.snapshot()
        assert snap["total_slow"] == 1
        (entry,) = snap["recent"]
        assert entry["protocol"] == "SkNNm"
        assert entry["trace_id"] == "ff"
        assert entry["k"] == 5

    def test_disabled_with_none_threshold(self):
        log = telemetry_logs.SlowQueryLog(threshold_seconds=None)
        assert not log.observe(10_000.0)
        assert log.snapshot()["total_slow"] == 0

    def test_ring_is_bounded_but_total_keeps_counting(self):
        log = telemetry_logs.SlowQueryLog(threshold_seconds=0.0, capacity=3,
                                          logger=logging.getLogger("t.slow2"))
        for index in range(7):
            log.observe(float(index) + 0.1, protocol=f"p{index}")
        snap = log.snapshot()
        assert snap["total_slow"] == 7
        assert [e["protocol"] for e in snap["recent"]] == ["p4", "p5", "p6"]


class TestJsonLogging:
    def test_formatter_emits_json_with_extras_and_trace_id(self):
        formatter = telemetry_logs.JsonLogFormatter()
        record = logging.LogRecord("repro.test", logging.INFO, __file__, 1,
                                   "served %d", (3,), None)
        record.protocol = "SkNNb"
        with tracing.trace("query") as root:
            entry = json.loads(formatter.format(record))
        tracing.get_tracer().take(root.trace_id)
        assert entry["message"] == "served 3"
        assert entry["level"] == "INFO"
        assert entry["protocol"] == "SkNNb"
        assert entry["trace_id"] == root.trace_id

    def test_configure_is_idempotent_per_logger(self):
        logger = logging.getLogger("repro.test.jsoncfg")
        try:
            first = telemetry_logs.configure_json_logging(
                logging.DEBUG, logger=logger)
            second = telemetry_logs.configure_json_logging(
                logging.INFO, logger=logger)
            assert first is second
            assert len(logger.handlers) == 1
            assert logger.level == logging.INFO
        finally:
            logger.handlers.clear()


# ---------------------------------------------------------------------------
# httpd
# ---------------------------------------------------------------------------

def _get(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


class TestMetricsHTTPServer:
    def test_parse_listen_address(self):
        assert parse_listen_address("127.0.0.1:9109") == ("127.0.0.1", 9109)
        assert parse_listen_address("0.0.0.0:0") == ("0.0.0.0", 0)
        with pytest.raises(ValueError):
            parse_listen_address("9109")
        with pytest.raises(ValueError):
            parse_listen_address("host:")

    def test_serves_metrics_stats_and_healthz(self):
        registry = MetricsRegistry()
        registry.counter("repro_p2_steps_total", "Steps.", ("tag",)) \
            .inc(tag="SM.go")
        with MetricsHTTPServer("127.0.0.1:0", registry=registry,
                               extra_stats=lambda: {"role": "C2"}) as server:
            status, body = _get(server.url + "/metrics")
            assert status == 200
            assert 'repro_p2_steps_total{tag="SM.go"} 1' in body

            status, body = _get(server.url + "/stats")
            document = json.loads(body)
            assert document["role"] == "C2"
            assert document["metrics"]["repro_p2_steps_total"]["values"] \
                == {"SM.go": 1.0}

            assert _get(server.url + "/healthz") == (200, "ok\n")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_broken_extra_stats_does_not_take_the_page_down(self):
        registry = MetricsRegistry()

        def explode():
            raise RuntimeError("stats backend gone")

        with MetricsHTTPServer("127.0.0.1:0", registry=registry,
                               extra_stats=explode) as server:
            status, body = _get(server.url + "/stats")
            assert status == 200
            assert "stats_error" in json.loads(body)

    def test_concurrent_scrapes(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "").inc()
        results: list[int] = []
        with MetricsHTTPServer("127.0.0.1:0", registry=registry) as server:
            def scrape():
                status, _ = _get(server.url + "/metrics")
                results.append(status)

            threads = [threading.Thread(target=scrape) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert results == [200] * 8


class TestHistogramQuantiles:
    def test_bucket_quantile_interpolates_within_buckets(self):
        from repro.telemetry.metrics import bucket_quantile

        buckets = (1.0, 2.0, 4.0)
        # 10 observations in (0,1], 10 in (1,2], none beyond.
        counts = [10, 10, 0, 0]
        assert bucket_quantile(buckets, counts, 20, 0.50) == pytest.approx(1.0)
        assert bucket_quantile(buckets, counts, 20, 0.25) == pytest.approx(0.5)
        assert bucket_quantile(buckets, counts, 20, 0.75) == pytest.approx(1.5)

    def test_bucket_quantile_edge_cases(self):
        from repro.telemetry.metrics import bucket_quantile

        buckets = (1.0, 2.0)
        assert bucket_quantile(buckets, [0, 0, 0], 0, 0.5) == 0.0
        # Every observation beyond the last finite bound clamps to it.
        assert bucket_quantile(buckets, [0, 0, 5], 5, 0.99) == 2.0

    def test_histogram_snapshot_includes_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", "", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 0.5, 0.5, 5.0):
            hist.observe(value)
        values = hist.snapshot()[""]
        assert set(values) >= {"count", "sum", "mean", "p50", "p95", "p99"}
        assert 0.1 < values["p50"] <= 1.0
        assert 1.0 < values["p99"] <= 10.0


class TestHTTPServerHardening:
    def test_404_carries_json_error_body(self):
        registry = MetricsRegistry()
        with MetricsHTTPServer("127.0.0.1:0", registry=registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404
            document = json.loads(excinfo.value.read().decode("utf-8"))
            assert document["error"] == "not found"
            assert document["path"] == "/nope"
            assert "/metrics" in document["endpoints"]

    def test_profile_endpoint_serves_collapsed_stacks(self):
        registry = MetricsRegistry()
        with MetricsHTTPServer("127.0.0.1:0", registry=registry) as server:
            # No armed profiler: the endpoint samples with an ephemeral one.
            status, body = _get(server.url + "/profile?seconds=0.1")
            assert status == 200
            for line in body.strip().splitlines():
                stack, _, count = line.rpartition(" ")
                assert stack and int(count) > 0

    def test_profile_endpoint_rejects_bad_seconds(self):
        registry = MetricsRegistry()
        with MetricsHTTPServer("127.0.0.1:0", registry=registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/profile?seconds=bogus")
            assert excinfo.value.code == 400

    def test_scrapes_survive_concurrent_registry_reset(self):
        from repro.telemetry.metrics import get_registry, reset_registry

        reset_registry()
        get_registry().counter("reset_race_total", "").inc()
        statuses: list[int] = []
        # registry=None tracks the *global* registry per request.
        with MetricsHTTPServer("127.0.0.1:0") as server:
            stop = threading.Event()

            def hammer():
                while not stop.is_set():
                    reset_registry()
                    get_registry().counter("reset_race_total", "").inc()

            resetter = threading.Thread(target=hammer)
            resetter.start()
            try:
                for _ in range(20):
                    status, _ = _get(server.url + "/metrics")
                    statuses.append(status)
                    status, _ = _get(server.url + "/stats")
                    statuses.append(status)
            finally:
                stop.set()
                resetter.join()
        reset_registry()
        assert statuses == [200] * 40
