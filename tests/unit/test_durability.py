"""Unit tests for crash-consistent persistence (repro.resilience.durability).

Covers the two primitives — atomic CRC-checked snapshots and the
append-only journal with torn-tail repair — plus their daemon-state
consumers :class:`DurableReplyCache` and
:class:`~repro.transport.daemon.DurableShareMailbox`, and the in-process
(``raise`` mode) half of the crash-point harness.  The subprocess SIGKILL
half lives in ``tests/integration/test_crash_points.py``.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.exceptions import CorruptStateError
from repro.resilience.durability import (
    CRASH_POINTS,
    CrashPointFired,
    DurableReplyCache,
    Journal,
    arm_crash_point,
    atomic_write_bytes,
    crash_point,
    disarm_crash_points,
    read_snapshot,
    write_snapshot,
)
from repro.transport.daemon import DurableShareMailbox


@pytest.fixture(autouse=True)
def _disarm():
    yield
    disarm_crash_points()


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------

class TestSnapshots:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "state.json"
        write_snapshot(path, "manifest", {"role": "c1", "n": [1, 2, 3]})
        assert read_snapshot(path, "manifest") == {"role": "c1",
                                                   "n": [1, 2, 3]}

    def test_missing_file_reads_as_none(self, tmp_path):
        assert read_snapshot(tmp_path / "absent.json", "manifest") is None

    def test_overwrite_replaces_whole_document(self, tmp_path):
        path = tmp_path / "state.json"
        write_snapshot(path, "manifest", {"v": 1})
        write_snapshot(path, "manifest", {"v": 2})
        assert read_snapshot(path, "manifest") == {"v": 2}

    def test_wrong_kind_is_corrupt(self, tmp_path):
        path = tmp_path / "state.json"
        write_snapshot(path, "manifest", {"v": 1})
        with pytest.raises(CorruptStateError, match="other-kind"):
            read_snapshot(path, "other-kind")

    def test_truncated_file_is_corrupt_not_a_crash(self, tmp_path):
        path = tmp_path / "state.json"
        write_snapshot(path, "manifest", {"v": 1})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CorruptStateError, match="torn snapshot"):
            read_snapshot(path, "manifest")

    def test_bit_flip_fails_the_crc(self, tmp_path):
        path = tmp_path / "state.json"
        write_snapshot(path, "manifest", {"role": "c1"})
        document = json.loads(path.read_text())
        document["payload"] = document["payload"].replace("c1", "c2")
        path.write_text(json.dumps(document))
        with pytest.raises(CorruptStateError, match="CRC"):
            read_snapshot(path, "manifest")

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "state.json"
        write_snapshot(path, "manifest", {"v": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]


# ---------------------------------------------------------------------------
# Crash points (raise mode; kill mode is exercised via subprocesses)
# ---------------------------------------------------------------------------

class TestCrashPoints:
    def test_unarmed_is_a_no_op(self):
        crash_point("snapshot.pre_rename")  # nothing armed: returns

    def test_armed_point_fires_once(self):
        arm_crash_point("snapshot.pre_rename")
        with pytest.raises(CrashPointFired, match="snapshot.pre_rename"):
            crash_point("snapshot.pre_rename")
        crash_point("snapshot.pre_rename")  # disarmed after firing

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="crash mode"):
            arm_crash_point("snapshot.pre_rename", mode="segfault")

    def test_fired_is_not_an_ordinary_exception(self):
        # SIGKILL semantics: `except Exception` recovery must not catch it.
        assert not issubclass(CrashPointFired, Exception)

    @pytest.mark.parametrize("point", [p for p in CRASH_POINTS
                                       if p.startswith("snapshot.")])
    def test_crash_during_write_preserves_the_old_snapshot(self, tmp_path,
                                                           point):
        path = tmp_path / "state.json"
        write_snapshot(path, "manifest", {"v": "old"})
        arm_crash_point(point)
        with pytest.raises(CrashPointFired):
            write_snapshot(path, "manifest", {"v": "new"})
        # Atomicity: the reader sees the complete old document.
        assert read_snapshot(path, "manifest") == {"v": "old"}

    def test_crash_after_rename_boundary_publishes_the_new_one(self, tmp_path):
        # pre_rename is the last boundary; past it the rename is the commit
        # point, so a non-crashing write publishes the new document whole.
        path = tmp_path / "state.json"
        write_snapshot(path, "manifest", {"v": "old"})
        write_snapshot(path, "manifest", {"v": "new"})
        assert read_snapshot(path, "manifest") == {"v": "new"}


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------

def open_journal(path, **kwargs):
    journal = Journal(path, name="test", **kwargs)
    records = journal.open()
    return journal, records


class TestJournal:
    def test_append_replay_round_trip(self, tmp_path):
        path = tmp_path / "ops.journal"
        journal, records = open_journal(path)
        assert records == []
        journal.append({"op": "put", "id": 1})
        journal.append({"op": "take", "id": 1, "attempt": "t-1"})
        journal.close()

        reopened, records = open_journal(path)
        assert records == [{"op": "put", "id": 1},
                           {"op": "take", "id": 1, "attempt": "t-1"}]
        assert reopened.records == 2
        reopened.close()

    def test_append_after_replay_continues_the_log(self, tmp_path):
        path = tmp_path / "ops.journal"
        journal, _ = open_journal(path)
        journal.append({"n": 1})
        journal.close()
        journal, _ = open_journal(path)
        journal.append({"n": 2})
        journal.close()
        _, records = open_journal(path)
        assert records == [{"n": 1}, {"n": 2}]

    def test_torn_tail_is_truncated_and_survivors_replay(self, tmp_path):
        path = tmp_path / "ops.journal"
        journal, _ = open_journal(path)
        journal.append({"n": 1})
        journal.append({"n": 2})
        journal.close()
        raw = path.read_bytes()
        path.write_bytes(raw[:-4])  # tear the final record mid-line

        reopened, records = open_journal(path)
        assert records == [{"n": 1}]
        # the torn bytes are physically gone: a later append starts clean
        reopened.append({"n": 3})
        reopened.close()
        _, records = open_journal(path)
        assert records == [{"n": 1}, {"n": 3}]

    def test_bad_crc_tail_is_discarded(self, tmp_path):
        path = tmp_path / "ops.journal"
        journal, _ = open_journal(path)
        journal.append({"n": 1})
        journal.close()
        body = json.dumps({"n": 2}, separators=(",", ":")).encode()
        bad = format(zlib.crc32(body) ^ 0xFF, "08x").encode()
        with open(path, "ab") as handle:
            handle.write(bad + b" " + body + b"\n")
        _, records = open_journal(path)
        assert records == [{"n": 1}]

    def test_intact_records_after_damage_raise_corrupt(self, tmp_path):
        path = tmp_path / "ops.journal"
        journal, _ = open_journal(path)
        journal.append({"n": 1})
        journal.append({"n": 2})
        journal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        # damage the FIRST record: an intact record follows it, which a
        # single crash cannot produce — this is corruption, not a torn tail
        path.write_bytes(b"deadbeef" + lines[0][8:] + lines[1])
        with pytest.raises(CorruptStateError, match="corrupt"):
            open_journal(path)

    def test_rewrite_compacts_atomically(self, tmp_path):
        path = tmp_path / "ops.journal"
        journal, _ = open_journal(path)
        for n in range(10):
            journal.append({"n": n})
        journal.rewrite([{"n": 8}, {"n": 9}])
        assert journal.records == 2
        journal.append({"n": 10})
        journal.close()
        _, records = open_journal(path)
        assert records == [{"n": 8}, {"n": 9}, {"n": 10}]

    def test_crash_mid_compaction_keeps_the_full_log(self, tmp_path):
        path = tmp_path / "ops.journal"
        journal, _ = open_journal(path)
        journal.append({"n": 1})
        journal.append({"n": 2})
        arm_crash_point("snapshot.pre_rename")  # rewrite uses the snapshot path
        with pytest.raises(CrashPointFired):
            journal.rewrite([{"n": 2}])
        _, records = open_journal(path)
        assert records == [{"n": 1}, {"n": 2}]

    def test_crash_pre_fsync_loses_at_most_the_last_append(self, tmp_path):
        path = tmp_path / "ops.journal"
        journal, _ = open_journal(path)
        journal.append({"n": 1})
        arm_crash_point("journal.pre_fsync")
        with pytest.raises(CrashPointFired):
            journal.append({"n": 2})
        journal.close()
        _, records = open_journal(path)
        # the flushed-but-unfsynced record may or may not survive a real
        # power cut; after a process crash the prefix must always replay
        assert records[0] == {"n": 1}
        assert len(records) <= 2


# ---------------------------------------------------------------------------
# DurableReplyCache
# ---------------------------------------------------------------------------

class TestDurableReplyCache:
    def test_completed_reply_survives_reopen(self, tmp_path):
        path = tmp_path / "replies.journal"
        cache = DurableReplyCache(path, name="unit")
        assert cache.run("q-1", lambda: {"answer": 7}) == {"answer": 7}
        cache.close()

        revived = DurableReplyCache(path, name="unit")
        assert revived.recovered == 1
        ran = []
        assert revived.run("q-1", lambda: ran.append(1)) == {"answer": 7}
        assert not ran  # zero re-execution
        revived.close()

    def test_clear_is_journaled(self, tmp_path):
        path = tmp_path / "replies.journal"
        cache = DurableReplyCache(path, name="unit")
        cache.run("q-1", lambda: "old epoch")
        cache.clear()
        cache.close()
        revived = DurableReplyCache(path, name="unit")
        assert revived.recovered == 0
        assert revived.run("q-1", lambda: "new epoch") == "new epoch"
        revived.close()

    def test_journal_compacts_to_live_entries(self, tmp_path):
        path = tmp_path / "replies.journal"
        cache = DurableReplyCache(path, name="unit", capacity=4,
                                  compact_every=8)
        for index in range(20):
            cache.run(f"q-{index}", lambda index=index: index)
        assert cache.journal_records <= 9  # bounded by compaction, not 20
        cache.close()
        revived = DurableReplyCache(path, name="unit", capacity=4)
        assert revived.recovered <= 4
        assert revived.run("q-19", lambda: "recomputed") == 19
        revived.close()

    def test_failed_journal_append_fails_the_query(self, tmp_path):
        # A reply that could not be made durable must not be served from
        # memory: the attempt fails and a retry re-runs the computation.
        path = tmp_path / "replies.journal"
        cache = DurableReplyCache(path, name="unit")
        arm_crash_point("journal.pre_fsync")
        with pytest.raises(CrashPointFired):
            cache.run("q-1", lambda: "value")
        assert cache.run("q-1", lambda: "retried") == "retried"
        cache.close()


# ---------------------------------------------------------------------------
# DurableShareMailbox
# ---------------------------------------------------------------------------

class TestDurableShareMailbox:
    def test_pending_delivery_survives_reopen(self, tmp_path):
        path = tmp_path / "mailbox.journal"
        mailbox = DurableShareMailbox(path)
        mailbox.put(3, [[10, 11]])
        mailbox.close()

        revived = DurableShareMailbox(path)
        assert revived.recovered == 1
        assert revived.fetch(3, timeout=0.5, attempt="t-1") == [[10, 11]]
        revived.close()

    def test_attempt_memo_survives_reopen(self, tmp_path):
        path = tmp_path / "mailbox.journal"
        mailbox = DurableShareMailbox(path)
        mailbox.put(3, [[10, 11]])
        first = mailbox.fetch(3, timeout=0.5, attempt="t-1")
        mailbox.close()

        revived = DurableShareMailbox(path)
        # the retried fetch (same attempt token) replays bit-identically
        assert revived.fetch(3, timeout=0.5, attempt="t-1") == first
        revived.close()

    def test_epoch_adoption_is_journaled(self, tmp_path):
        path = tmp_path / "mailbox.journal"
        mailbox = DurableShareMailbox(path)
        assert mailbox.adopt_epoch("epoch-a") is False  # first hello: wipe
        mailbox.put(1, [[5]])
        mailbox.close()

        revived = DurableShareMailbox(path)
        # same C1 process re-dials after a C2 restart: state is kept
        assert revived.adopt_epoch("epoch-a") is True
        assert revived.fetch(1, timeout=0.5, attempt="t") == [[5]]
        # a *restarted* C1 presents a fresh epoch: delivery ids recycle,
        # so everything must be wiped
        assert revived.adopt_epoch("epoch-b") is False
        assert len(revived) == 0
        revived.close()

    def test_clear_wipes_disk_state_too(self, tmp_path):
        path = tmp_path / "mailbox.journal"
        mailbox = DurableShareMailbox(path)
        mailbox.put(1, [[5]])
        mailbox.clear()
        mailbox.close()
        revived = DurableShareMailbox(path)
        assert revived.recovered == 0
        revived.close()

    def test_journal_compacts(self, tmp_path):
        path = tmp_path / "mailbox.journal"
        mailbox = DurableShareMailbox(path, compact_every=6)
        for delivery_id in range(12):
            mailbox.put(delivery_id, [[delivery_id]])
            mailbox.fetch(delivery_id, timeout=0.5,
                          attempt=f"t-{delivery_id}")
        assert mailbox.journal_records <= 2 * mailbox.DELIVERED_MEMO + 8
        mailbox.close()
        revived = DurableShareMailbox(path, compact_every=6)
        # the newest memos still replay after compaction + reopen
        assert revived.fetch(11, timeout=0.5, attempt="t-11") == [[11]]
        revived.close()
