"""Failure domains of the pooled, multiplexed peer link.

The pipelining claim comes with a blast-radius claim: with N pooled
connections carrying M in-flight query contexts, killing one connection
must fail exactly the contexts routed over it — with typed retriable
errors — while contexts on the surviving connections complete normally,
and the pool heals on the next lease.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.exceptions import ChannelError, DeadlineExceeded, PeerUnavailable
from repro.telemetry import metrics as _metrics
from repro.transport.mux import MuxConnection, PeerPool
from repro.transport.wire import WireCodec

ECHO_TAG = "pool.echo"


class _EchoPeer:
    """A C2-side mux endpoint that echoes every context's frames back."""

    def __init__(self) -> None:
        self.codec = WireCodec()
        self.server_sides: list[MuxConnection] = []

    def dial(self) -> MuxConnection:
        sock_client, sock_server = socket.socketpair()

        def echo(channel) -> None:
            def run() -> None:
                try:
                    while True:
                        payload = channel.receive("C2")
                        channel.send("C2", payload, tag=ECHO_TAG)
                except (PeerUnavailable, ChannelError, DeadlineExceeded):
                    return  # the context (or its connection) went away
            threading.Thread(target=run, daemon=True).start()

        server = MuxConnection(sock_server, self.codec, "C2", "C1",
                               io_deadline=30.0, on_new_context=echo)
        server.start_reader()
        self.server_sides.append(server)
        client = MuxConnection(sock_client, self.codec, "C1", "C2",
                               io_deadline=30.0)
        client.start_reader()
        return client

    def close(self) -> None:
        for connection in self.server_sides:
            connection.close()


@pytest.fixture()
def peer():
    endpoint = _EchoPeer()
    yield endpoint
    endpoint.close()


def test_one_dropped_connection_fails_only_its_contexts(peer):
    pool = PeerPool(peer.dial, size=2)
    try:
        channels = [pool.lease() for _ in range(4)]
        # Least-loaded routing spreads 4 contexts over both connections.
        by_connection: dict[int, list] = {}
        for channel in channels:
            by_connection.setdefault(id(channel.connection), []).append(
                channel)
        assert len(by_connection) == 2
        assert sorted(len(group) for group in by_connection.values()) == [2, 2]

        for index, channel in enumerate(channels):
            channel.send("C1", {"q": index}, tag="pool.req")
            assert channel.receive("C1",
                                   expected_tag=ECHO_TAG) == {"q": index}

        # Chaos: one connection dies mid-flight.
        doomed, survivor = list(by_connection.values())
        doomed[0].connection.fail(
            PeerUnavailable("injected: peer connection dropped"))

        for channel in doomed:
            with pytest.raises((PeerUnavailable, ChannelError)):
                channel.send("C1", {"q": "dead"}, tag="pool.req")

        # ... while queries on the surviving connection complete normally.
        for index, channel in enumerate(survivor):
            channel.send("C1", {"again": index}, tag="pool.req")
            assert channel.receive("C1",
                                   expected_tag=ECHO_TAG) == {"again": index}
    finally:
        pool.close()


def test_pool_heals_on_next_lease_and_counts_reconnects(peer):
    registry = _metrics.get_registry()
    counter = registry.counter(
        "repro_reconnects_total",
        "Peer/daemon connections re-established after a failure.", ("role",))
    before = counter.labels(role="c1").value

    pool = PeerPool(peer.dial, size=2, role="c1")
    try:
        first = pool.lease()
        first.send("C1", "warm", tag="pool.req")
        assert first.receive("C1", expected_tag=ECHO_TAG) == "warm"

        dead = first.connection
        dead.fail(PeerUnavailable("injected: peer connection dropped"))

        healed = pool.lease()
        assert healed.connection is not dead
        assert healed.connection.alive
        healed.send("C1", "back", tag="pool.req")
        assert healed.receive("C1", expected_tag=ECHO_TAG) == "back"
        assert len([c for c in pool.connections() if c.alive]) == 2
        assert counter.labels(role="c1").value == before + 1
    finally:
        pool.close()
