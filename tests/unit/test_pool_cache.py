"""Pool persistence: warmed precompute pools survive a daemon restart.

The cache file is versioned, bound to the key's modulus, and strictly
single-use: saving *drains* the in-memory pools and loading *deletes* the
file, so a (r, E(r)) tuple or obfuscation factor can never be consumed twice
across process lifetimes.
"""

from __future__ import annotations

import json
from random import Random

import pytest

from repro.crypto.precompute import PrecomputeConfig, PrecomputeEngine
from repro.exceptions import ConfigurationError


def small_config(**overrides):
    defaults = dict(obfuscators=6, zeros=3, ones=3, zn_masks=4,
                    nonzero_masks=2, sbd_bit_length=8, sbd_masks=2,
                    refill_batch=8)
    defaults.update(overrides)
    return PrecomputeConfig(**defaults)


@pytest.fixture()
def warm_engine(public_key):
    engine = PrecomputeEngine(public_key, rng=Random(3), config=small_config())
    engine.warm()
    return engine


class TestSaveLoadRoundTrip:
    def test_round_trip_restores_every_pool(self, warm_engine, public_key,
                                            tmp_path):
        cache = tmp_path / "c1.pools"
        before = warm_engine.remaining()
        saved = warm_engine.save_pools(cache)
        assert saved == sum(before.values())
        # Saving drained the source engine (single-use: memory XOR disk).
        assert sum(warm_engine.remaining().values()) == 0

        fresh = PrecomputeEngine(public_key, rng=Random(4),
                                 config=small_config())
        loaded = fresh.load_pools(cache)
        assert loaded == saved
        assert fresh.remaining() == before
        # The cache is deleted on load so a restart can never replay it.
        assert not cache.exists()

    def test_loaded_material_is_usable(self, warm_engine, public_key,
                                       private_key, tmp_path):
        cache = tmp_path / "pools.json"
        warm_engine.save_pools(cache)
        fresh = PrecomputeEngine(public_key, rng=Random(5),
                                 config=small_config())
        fresh.load_pools(cache)
        r, enc_r = fresh.take_mask("zn")
        assert private_key.decrypt_raw_residue(enc_r) == r
        assert private_key.decrypt(fresh.encrypt_constant(1)) == 1

    def test_warm_after_load_only_tops_up(self, warm_engine, public_key,
                                          tmp_path):
        cache = tmp_path / "pools.json"
        warm_engine.save_pools(cache)
        fresh = PrecomputeEngine(public_key, rng=Random(6),
                                 config=small_config())
        fresh.load_pools(cache)
        # Everything was reloaded, so warming finds no deficit: the restarted
        # party starts hot without redoing the offline exponentiations.
        assert fresh.warm() == 0
        assert fresh.offline.encryptions == 0


class TestCacheValidation:
    def test_wrong_key_rejected(self, warm_engine, tmp_path):
        from repro.crypto.paillier import generate_keypair

        cache = tmp_path / "pools.json"
        warm_engine.save_pools(cache)
        other_key = generate_keypair(128, Random(99)).public_key
        other = PrecomputeEngine(other_key, rng=Random(7),
                                 config=small_config())
        with pytest.raises(ConfigurationError, match="different key"):
            other.load_pools(cache)
        assert cache.exists()  # a rejected cache is left untouched

    def test_wrong_format_rejected(self, public_key, tmp_path):
        cache = tmp_path / "pools.json"
        cache.write_text(json.dumps({"kind": "something-else", "format": 1}))
        engine = PrecomputeEngine(public_key, config=small_config())
        with pytest.raises(ConfigurationError, match="pool cache"):
            engine.load_pools(cache)

    def test_unreadable_cache_rejected(self, public_key, tmp_path):
        cache = tmp_path / "pools.json"
        cache.write_text("{truncated")
        engine = PrecomputeEngine(public_key, config=small_config())
        with pytest.raises(ConfigurationError, match="unreadable"):
            engine.load_pools(cache)

    def test_bit_flipped_cache_fails_the_crc(self, warm_engine, public_key,
                                             tmp_path):
        cache = tmp_path / "pools.json"
        warm_engine.save_pools(cache)
        data = json.loads(cache.read_text())
        # flip one nibble of one stored obfuscation factor
        factor = data["obfuscators"][0]
        data["obfuscators"][0] = ("0" if factor[0] != "0" else "1") + factor[1:]
        cache.write_text(json.dumps(data))
        engine = PrecomputeEngine(public_key, rng=Random(9),
                                  config=small_config())
        # rejected with a typed error, never half-adopted or crashed on
        with pytest.raises(ConfigurationError, match="CRC"):
            engine.load_pools(cache)
        assert sum(engine.remaining().values()) == 0

    def test_legacy_cache_without_crc_still_loads(self, warm_engine,
                                                  public_key, tmp_path):
        cache = tmp_path / "pools.json"
        saved = warm_engine.save_pools(cache)
        data = json.loads(cache.read_text())
        del data["crc"]  # a cache written before the CRC field existed
        cache.write_text(json.dumps(data))
        engine = PrecomputeEngine(public_key, rng=Random(10),
                                  config=small_config())
        assert engine.load_pools(cache) == saved

    def test_save_leaves_no_temp_file(self, warm_engine, tmp_path):
        cache = tmp_path / "pools.json"
        warm_engine.save_pools(cache)
        assert [p.name for p in tmp_path.iterdir()] == ["pools.json"]

    def test_sbd_masks_dropped_on_l_mismatch(self, warm_engine, public_key,
                                             tmp_path):
        cache = tmp_path / "pools.json"
        warm_engine.save_pools(cache)
        other_l = PrecomputeEngine(public_key, rng=Random(8),
                                   config=small_config(sbd_bit_length=12))
        other_l.load_pools(cache)
        remaining = other_l.remaining()
        # The l=8 SBD masks were produced for a different range -> dropped;
        # every other pool loads.
        assert remaining["mask:sbd"] == 0
        assert remaining["mask:zn"] == 4
        assert remaining["obfuscators"] == 6
