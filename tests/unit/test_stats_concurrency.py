"""Concurrent readers must always see consistent statistics snapshots.

Regression tests for the telemetry PR: ``ServerStats``,
``RandomnessPool.stats()`` and ``PrecomputeEngine.stats()`` are polled by
live introspection (``transport.stats``, the metrics collectors, benchmark
emitters) while worker/producer threads mutate them.  Each snapshot must be
taken under the owning lock so no reader ever observes a torn view — a
batch's query count without its busy time, or a hit/miss dict mid-resize.
"""

from __future__ import annotations

import threading
from random import Random

from repro.crypto.precompute import PrecomputeConfig, PrecomputeEngine
from repro.crypto.randomness_pool import RandomnessPool
from repro.service.scheduler import ServerStats

QUERIES_PER_BATCH = 3
SECONDS_PER_BATCH = 0.25


def hammer(worker, reader, threads: int = 4) -> list:
    """Run ``worker`` in N threads while the main thread runs ``reader``."""
    stop = threading.Event()
    errors: list[BaseException] = []

    def guarded() -> None:
        try:
            while not stop.is_set():
                worker()
        except BaseException as exc:  # pragma: no cover - the regression
            errors.append(exc)
            stop.set()

    pool = [threading.Thread(target=guarded) for _ in range(threads)]
    for thread in pool:
        thread.start()
    try:
        observations = [reader() for _ in range(300)]
    finally:
        stop.set()
        for thread in pool:
            thread.join()
    assert not errors, errors
    return observations


class TestServerStats:
    def test_snapshot_is_internally_consistent_under_writers(self):
        stats = ServerStats()

        def worker():
            stats.record_batch(QUERIES_PER_BATCH, SECONDS_PER_BATCH)

        for snap in hammer(worker, stats.snapshot):
            # Every batch adds exactly (3 queries, 0.25s): any atomic
            # snapshot keeps those ratios; a torn one breaks them.
            assert snap["queries_served"] == \
                QUERIES_PER_BATCH * snap["batches_served"]
            assert abs(snap["busy_seconds"]
                       - SECONDS_PER_BATCH * snap["batches_served"]) < 1e-6
            if snap["batches_served"]:
                assert snap["mean_batch_size"] == QUERIES_PER_BATCH

    def test_record_batch_totals(self):
        stats = ServerStats()
        threads = [threading.Thread(
            target=lambda: [stats.record_batch(2, 0.5) for _ in range(50)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = stats.snapshot()
        assert snap["batches_served"] == 400
        assert snap["queries_served"] == 800
        assert abs(snap["busy_seconds"] - 200.0) < 1e-6


class TestRandomnessPool:
    def test_snapshot_under_concurrent_takers(self, public_key):
        pool = RandomnessPool(public_key, size=64, rng=Random(3))

        def worker():
            pool.take_available(1)

        for snap in hammer(worker, pool.stats):
            # hits never exceed what was precomputed, and the four fields
            # come from one lock hold so they cannot contradict each other.
            assert snap["hits"] <= snap["precomputed_total"]
            assert snap["remaining"] \
                <= snap["precomputed_total"] - snap["hits"] + 64

    def test_totals_after_join(self, public_key):
        pool = RandomnessPool(public_key, size=32, rng=Random(4))
        takes_per_thread = 40

        def worker():
            for _ in range(takes_per_thread):
                pool.take_available(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = pool.stats()
        assert snap["hits"] + snap["misses"] == 4 * takes_per_thread
        assert snap["hits"] == 32  # everything precomputed was handed out


class TestPrecomputeEngine:
    def test_snapshot_while_hit_miss_dicts_grow(self, public_key):
        """Readers copy the hit/miss dicts under the stats lock, so a
        snapshot taken mid-run never observes a dict resize in flight."""
        engine = PrecomputeEngine(
            public_key, rng=Random(5),
            config=PrecomputeConfig(obfuscators=8, zeros=4, ones=4,
                                    zn_masks=8))
        engine.warm()
        counter = threading.Lock()
        values = iter(range(100000))

        def worker():
            with counter:
                value = next(values)
            # distinct constants → new dict keys → dict resizes while the
            # reader iterates; masks exercise the shared-name counters.
            engine.encrypt_constant(value % 200)
            engine.take_mask("zn")

        for snap in hammer(worker, engine.stats, threads=3):
            assert set(snap) >= {"remaining", "hits", "misses",
                                 "obfuscator_hits", "offline_encryptions"}
            assert all(count >= 0 for count in snap["hits"].values())
            assert all(count >= 0 for count in snap["misses"].values())

    def test_pool_hit_total_matches_stats(self, public_key):
        engine = PrecomputeEngine(
            public_key, rng=Random(6),
            config=PrecomputeConfig(obfuscators=4, zeros=2, ones=2,
                                    zn_masks=4))
        engine.warm()
        for _ in range(6):
            engine.take_mask("zn")
        snap = engine.stats()
        assert engine.pool_hit_total() == \
            sum(snap["hits"].values()) + snap["obfuscator_hits"]
