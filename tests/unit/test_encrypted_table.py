"""Unit tests for the attribute-wise encrypted table (Epk(T))."""

from __future__ import annotations

from random import Random

import pytest

from repro.db.encrypted_table import EncryptedRecord, EncryptedTable
from repro.db.schema import Schema
from repro.db.table import Table
from repro.exceptions import DatabaseError, SerializationError


@pytest.fixture()
def plain_table() -> Table:
    schema = Schema.from_names(["x", "y", "z"], maximum=50)
    return Table.from_rows(schema, [[1, 2, 3], [4, 5, 6], [7, 8, 9]])


class TestEncryptTable:
    def test_encrypt_preserves_shape_and_ids(self, plain_table, public_key):
        encrypted = EncryptedTable.encrypt_table(plain_table, public_key)
        assert len(encrypted) == 3
        assert encrypted.dimensions == 3
        assert [r.record_id for r in encrypted] == ["t1", "t2", "t3"]

    def test_decrypt_round_trip(self, plain_table, small_keypair):
        encrypted = EncryptedTable.encrypt_table(plain_table,
                                                 small_keypair.public_key)
        decrypted = encrypted.decrypt(small_keypair.private_key)
        assert decrypted.row_values() == plain_table.row_values()

    def test_ciphertexts_are_fresh_per_cell(self, plain_table, public_key):
        """Two encryptions of the same table must not share any ciphertext."""
        first = EncryptedTable.encrypt_table(plain_table, public_key)
        second = EncryptedTable.encrypt_table(plain_table, public_key)
        first_values = {c.value for record in first for c in record}
        second_values = {c.value for record in second for c in record}
        assert first_values.isdisjoint(second_values)

    def test_append_validates_arity(self, plain_table, public_key):
        encrypted = EncryptedTable.encrypt_table(plain_table, public_key)
        with pytest.raises(DatabaseError):
            encrypted.append(EncryptedRecord("bad", [public_key.encrypt(1)]))

    def test_record_at(self, plain_table, small_keypair):
        encrypted = EncryptedTable.encrypt_table(plain_table,
                                                 small_keypair.public_key)
        record = encrypted.record_at(1)
        values = [small_keypair.private_key.decrypt(c) for c in record]
        assert values == [4, 5, 6]


class TestRerandomization:
    def test_rerandomized_changes_ciphertexts_not_plaintexts(self, plain_table,
                                                             small_keypair):
        encrypted = EncryptedTable.encrypt_table(plain_table,
                                                 small_keypair.public_key,
                                                 rng=Random(1))
        refreshed = encrypted.rerandomized(rng=Random(2))
        original_values = [c.value for record in encrypted for c in record]
        refreshed_values = [c.value for record in refreshed for c in record]
        assert all(a != b for a, b in zip(original_values, refreshed_values))
        assert refreshed.decrypt(small_keypair.private_key).row_values() == \
            plain_table.row_values()


class TestEncryptedTableSerialization:
    def test_dict_round_trip(self, plain_table, small_keypair):
        encrypted = EncryptedTable.encrypt_table(plain_table,
                                                 small_keypair.public_key)
        data = encrypted.to_dict()
        restored = EncryptedTable.from_dict(data)
        assert restored.decrypt(small_keypair.private_key).row_values() == \
            plain_table.row_values()
        assert restored.schema.names == plain_table.schema.names

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(SerializationError):
            EncryptedTable.from_dict({"kind": "not-a-table"})

    def test_serialized_schema_preserves_ranges(self, plain_table, small_keypair):
        encrypted = EncryptedTable.encrypt_table(plain_table,
                                                 small_keypair.public_key)
        restored = EncryptedTable.from_dict(encrypted.to_dict())
        assert restored.schema.attribute("x").maximum == 50
