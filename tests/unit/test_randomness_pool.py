"""Unit tests for the precomputed Paillier randomness pool."""

from __future__ import annotations

import threading
from random import Random

import pytest

from repro.crypto.randomness_pool import RandomnessPool
from repro.exceptions import ConfigurationError


class TestPrecomputation:
    def test_constructor_precomputes_to_size(self, public_key):
        pool = RandomnessPool(public_key, size=10, rng=Random(1))
        assert pool.remaining == 10
        assert pool.precomputed_total == 10

    def test_precompute_false_defers_work(self, public_key):
        pool = RandomnessPool(public_key, size=10, rng=Random(2),
                              precompute=False)
        assert pool.remaining == 0
        assert pool.refill(4) == 4
        assert pool.remaining == 4

    def test_invalid_size_rejected(self, public_key):
        with pytest.raises(ConfigurationError):
            RandomnessPool(public_key, size=0)


class TestEncryption:
    def test_pooled_encryptions_decrypt_correctly(self, public_key, private_key):
        pool = RandomnessPool(public_key, size=16, rng=Random(3))
        for value in (0, 1, 42, -7, public_key.n // 3):
            assert private_key.decrypt(pool.encrypt(value)) == value

    def test_pooled_encrypt_zero_decrypts_to_zero(self, public_key, private_key):
        pool = RandomnessPool(public_key, size=4, rng=Random(4))
        assert private_key.decrypt(pool.encrypt_zero()) == 0

    def test_rerandomize_preserves_plaintext_changes_ciphertext(
            self, public_key, private_key):
        pool = RandomnessPool(public_key, size=4, rng=Random(5))
        original = public_key.encrypt(123, rng=Random(6))
        fresh = pool.rerandomize(original)
        assert fresh.value != original.value
        assert private_key.decrypt(fresh) == 123

    def test_rerandomize_rejects_foreign_key(self, public_key, medium_keypair):
        pool = RandomnessPool(public_key, size=2, rng=Random(7))
        foreign = medium_keypair.public_key.encrypt(1, rng=Random(8))
        with pytest.raises(ConfigurationError):
            pool.rerandomize(foreign)

    def test_encryptions_are_probabilistic(self, public_key):
        pool = RandomnessPool(public_key, size=8, rng=Random(9))
        first = pool.encrypt(5)
        second = pool.encrypt(5)
        assert first.value != second.value

    def test_counter_incremented_like_normal_path(self, public_key):
        pool = RandomnessPool(public_key, size=4, rng=Random(10))
        before = public_key.counter.encryptions
        pool.encrypt(1)
        pool.encrypt_zero()
        assert public_key.counter.encryptions == before + 2


class TestSingleUse:
    def test_factors_are_never_reused(self, public_key):
        pool = RandomnessPool(public_key, size=20, rng=Random(11))
        factors = [pool.take_factor() for _ in range(20)]
        assert len(set(factors)) == 20
        assert pool.remaining == 0

    def test_exhausted_pool_computes_on_demand_and_counts_misses(
            self, public_key, private_key):
        pool = RandomnessPool(public_key, size=2, rng=Random(12))
        values = [pool.encrypt(9) for _ in range(5)]
        assert pool.hits == 2
        assert pool.misses == 3
        assert len({c.value for c in values}) == 5
        assert all(private_key.decrypt(c) == 9 for c in values)

    def test_stats_snapshot(self, public_key):
        pool = RandomnessPool(public_key, size=3, rng=Random(13))
        pool.take_factor()
        stats = pool.stats()
        assert stats == {"remaining": 2, "hits": 1, "misses": 0,
                         "precomputed_total": 3}

    def test_take_available_never_computes(self, public_key):
        pool = RandomnessPool(public_key, size=3, rng=Random(20))
        taken = pool.take_available(5)
        assert len(taken) == 3
        assert pool.remaining == 0
        assert pool.hits == 3
        assert pool.misses == 2
        assert pool.take_available(2) == []
        assert pool.take_available_one() is None

    def test_concurrent_takers_get_distinct_factors(self, public_key):
        pool = RandomnessPool(public_key, size=40, rng=Random(14))
        taken: list[int] = []
        lock = threading.Lock()

        def take_some():
            local = [pool.take_factor() for _ in range(10)]
            with lock:
                taken.extend(local)

        threads = [threading.Thread(target=take_some) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(taken) == 40
        assert len(set(taken)) == 40


class TestBatchWiring:
    """The pool feeds the vectorized encryption kernel (PR 3 satellite)."""

    def test_encrypt_batch_consumes_pool_with_counter_parity(
            self, public_key, private_key):
        pool = RandomnessPool(public_key, size=4, rng=Random(30))
        before = public_key.counter.encryptions
        ciphertexts = pool.encrypt_batch([1, 2, 3, 4, 5, 6])
        # Parity: six logical encryptions, regardless of the factor source.
        assert public_key.counter.encryptions == before + 6
        # Pool hits/misses account for the split: 4 pooled, 2 comb-windowed.
        assert pool.hits == 4
        assert pool.misses == 2
        assert pool.remaining == 0
        assert private_key.decrypt_batch(ciphertexts) == [1, 2, 3, 4, 5, 6]

    def test_explicit_pool_argument_beats_windowed_path(self, public_key,
                                                        private_key):
        pool = RandomnessPool(public_key, size=2, rng=Random(31))
        ciphertexts = public_key.encrypt_batch([7, 8], pool=pool)
        assert pool.hits == 2
        assert private_key.decrypt_batch(ciphertexts) == [7, 8]

    def test_drained_pool_batch_never_reuses_factors(self, public_key):
        pool = RandomnessPool(public_key, size=2, rng=Random(32))
        values = pool.encrypt_batch([9] * 6)
        assert len({c.value for c in values}) == 6

    def test_from_factors_wraps_a_pool_slice(self, public_key, private_key):
        source = RandomnessPool(public_key, size=3, rng=Random(33))
        slice_pool = RandomnessPool.from_factors(public_key,
                                                 source.take_available(3))
        assert slice_pool.remaining == 3
        assert private_key.decrypt(slice_pool.encrypt(11)) == 11

    def test_encrypt_vector_routes_through_batch_kernel(self, public_key,
                                                        private_key):
        before = public_key.counter.snapshot()
        ciphertexts = public_key.encrypt_vector([1, -2, 300], rng=Random(34))
        after = public_key.counter.snapshot()
        assert after["encryptions"] == before["encryptions"] + 3
        assert after["exponentiations"] == before["exponentiations"]
        assert [private_key.decrypt(c) for c in ciphertexts] == [1, -2, 300]
