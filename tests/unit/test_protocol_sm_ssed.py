"""Unit tests for the SM and SSED sub-protocols (Algorithms 1 and 2)."""

from __future__ import annotations

from random import Random

import pytest

from repro.exceptions import ProtocolError
from repro.protocols.sm import SecureMultiplication
from repro.protocols.ssed import SecureSquaredEuclideanDistance


class TestSecureMultiplication:
    def test_paper_example_2(self, setting, private_key):
        """Example 2 of the paper: a=59, b=58 must give E(3422)."""
        protocol = SecureMultiplication(setting)
        result = protocol.run(setting.public_key.encrypt(59),
                              setting.public_key.encrypt(58))
        assert private_key.decrypt_raw_residue(result) == 59 * 58

    def test_random_pairs(self, setting, private_key, rng):
        protocol = SecureMultiplication(setting)
        for _ in range(15):
            a = rng.randrange(0, 2**20)
            b = rng.randrange(0, 2**20)
            result = protocol.run(setting.public_key.encrypt(a),
                                  setting.public_key.encrypt(b))
            assert private_key.decrypt_raw_residue(result) == a * b

    def test_multiplication_by_zero(self, setting, private_key):
        protocol = SecureMultiplication(setting)
        result = protocol.run(setting.public_key.encrypt(0),
                              setting.public_key.encrypt(12345))
        assert private_key.decrypt_raw_residue(result) == 0

    def test_multiplication_by_one(self, setting, private_key):
        protocol = SecureMultiplication(setting)
        result = protocol.run(setting.public_key.encrypt(1),
                              setting.public_key.encrypt(999))
        assert private_key.decrypt_raw_residue(result) == 999

    def test_bits_multiply_like_and(self, setting, private_key):
        protocol = SecureMultiplication(setting)
        for a in (0, 1):
            for b in (0, 1):
                result = protocol.run(setting.public_key.encrypt(a),
                                      setting.public_key.encrypt(b))
                assert private_key.decrypt_raw_residue(result) == (a & b)

    def test_result_is_fresh_ciphertext(self, setting):
        """The output must not equal either input ciphertext (re-randomized)."""
        protocol = SecureMultiplication(setting)
        enc_a = setting.public_key.encrypt(7)
        enc_b = setting.public_key.encrypt(1)
        result = protocol.run(enc_a, enc_b)
        assert result.value != enc_a.value
        assert result.value != enc_b.value

    def test_operation_counts_match_model(self, setting):
        """SM costs exactly 3 encryptions, 2 decryptions, 2 exponentiations."""
        protocol = SecureMultiplication(setting)
        result = protocol.run_instrumented(setting.public_key.encrypt(3),
                                           setting.public_key.encrypt(4))
        stats = result.stats
        assert stats.total_encryptions == 3
        assert stats.total_decryptions == 2
        assert stats.total_exponentiations == 2
        assert stats.messages == 2

    def test_p2_only_sees_masked_values(self, setting, private_key):
        """Everything C1 sends during SM decrypts to a masked (random) value.

        With a = b = 0 the masked operands decrypt exactly to the masks; the
        test asserts they are not the trivial value 0, i.e. masking happened.
        """
        protocol = SecureMultiplication(setting)
        protocol.run(setting.public_key.encrypt(0), setting.public_key.encrypt(0))
        sent_by_c1 = list(setting.channel.transcript_payloads("C1"))
        assert sent_by_c1, "C1 must have sent the masked operands"
        masked_pair = sent_by_c1[0]
        values = [private_key.decrypt_raw_residue(c) for c in masked_pair]
        assert all(value != 0 for value in values)


class TestSecureSquaredEuclideanDistance:
    def test_paper_example_3(self, setting, private_key):
        """Example 3: records t1 and t2 of Table 1 have squared distance 813."""
        protocol = SecureSquaredEuclideanDistance(setting)
        x = [63, 1, 1, 145, 233, 1, 3, 0, 6, 0]
        y = [56, 1, 3, 130, 256, 1, 2, 1, 6, 2]
        result = protocol.run(setting.public_key.encrypt_vector(x),
                              setting.public_key.encrypt_vector(y))
        assert private_key.decrypt_raw_residue(result) == 813

    def test_distance_to_self_is_zero(self, setting, private_key):
        protocol = SecureSquaredEuclideanDistance(setting)
        x = [5, 10, 15]
        enc_x = setting.public_key.encrypt_vector(x)
        enc_x_again = setting.public_key.encrypt_vector(x)
        assert private_key.decrypt_raw_residue(protocol.run(enc_x, enc_x_again)) == 0

    def test_symmetry(self, setting, private_key, rng):
        protocol = SecureSquaredEuclideanDistance(setting)
        x = [rng.randrange(100) for _ in range(4)]
        y = [rng.randrange(100) for _ in range(4)]
        d_xy = private_key.decrypt_raw_residue(
            protocol.run(setting.public_key.encrypt_vector(x),
                         setting.public_key.encrypt_vector(y)))
        d_yx = private_key.decrypt_raw_residue(
            protocol.run(setting.public_key.encrypt_vector(y),
                         setting.public_key.encrypt_vector(x)))
        assert d_xy == d_yx == sum((a - b) ** 2 for a, b in zip(x, y))

    def test_single_dimension(self, setting, private_key):
        protocol = SecureSquaredEuclideanDistance(setting)
        result = protocol.run(setting.public_key.encrypt_vector([10]),
                              setting.public_key.encrypt_vector([3]))
        assert private_key.decrypt_raw_residue(result) == 49

    def test_rejects_dimension_mismatch(self, setting):
        protocol = SecureSquaredEuclideanDistance(setting)
        with pytest.raises(ProtocolError):
            protocol.run(setting.public_key.encrypt_vector([1, 2]),
                         setting.public_key.encrypt_vector([1]))

    def test_rejects_empty_vectors(self, setting):
        protocol = SecureSquaredEuclideanDistance(setting)
        with pytest.raises(ProtocolError):
            protocol.run([], [])

    def test_operation_counts_scale_with_dimensions(self, setting):
        protocol = SecureSquaredEuclideanDistance(setting)
        dims = 5
        x = list(range(dims))
        y = list(range(dims, 2 * dims))
        result = protocol.run_instrumented(setting.public_key.encrypt_vector(x),
                                           setting.public_key.encrypt_vector(y))
        stats = result.stats
        # m SM invocations: 3m encryptions, 2m decryptions, 3m exponentiations
        # (2m from SM plus m for the homomorphic subtraction).
        assert stats.total_encryptions == 3 * dims
        assert stats.total_decryptions == 2 * dims
        assert stats.total_exponentiations == 3 * dims
