"""Unit tests for phase-level cost attribution and the sampling profiler.

The ledger half runs on a fake clock and fake operation counters so every
attribution assertion is exact; the acceptance tests at the bottom run the
real serial protocols and pin down the tentpole invariants: phase seconds
sum to the query wall time (within 1%) and phase operation counts sum
exactly to the Paillier counter deltas.
"""

from __future__ import annotations

import threading
import time
from random import Random

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import (
    _ACTIVE_LEDGER,
    _NOOP_SCOPE,
    CostLedger,
    SamplingProfiler,
    cost_scope,
    format_cost_table,
    phase_seconds_of,
    profile_window,
    record_phase_metrics,
    wrap_span,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class FakeCounter:
    """Operation-counter stand-in with a driveable snapshot."""

    def __init__(self) -> None:
        self.ops: dict[str, int] = {}

    def bump(self, op: str, count: int = 1) -> None:
        self.ops[op] = self.ops.get(op, 0) + count

    def snapshot(self) -> dict[str, int]:
        return dict(self.ops)


def rows_by_key(rows):
    return {(row["phase"], row["party"]): row for row in rows}


class TestCostLedger:
    def test_exclusive_attribution_with_fake_clock(self):
        clock, counter = FakeClock(), FakeCounter()
        ledger = CostLedger([counter], clock=clock)
        with ledger.activate():
            with cost_scope("scan"):
                clock.advance(2.0)
                counter.bump("encryptions", 5)
            with cost_scope("select"):
                clock.advance(1.0)
                counter.bump("decryptions", 3)
        rows = rows_by_key(ledger.finish())
        assert rows[("scan", "C1")]["seconds"] == pytest.approx(2.0)
        assert rows[("scan", "C1")]["ops"] == {"encryptions": 5}
        assert rows[("select", "C1")]["seconds"] == pytest.approx(1.0)
        assert rows[("select", "C1")]["ops"] == {"decryptions": 3}

    def test_nested_scopes_charge_innermost_and_roll_up(self):
        clock, counter = FakeClock(), FakeCounter()
        ledger = CostLedger([counter], clock=clock)
        with ledger.activate():
            with cost_scope("scan"):
                clock.advance(1.0)           # scan itself
                counter.bump("encryptions", 1)
                with cost_scope("SM"):       # nested: scan/SM
                    clock.advance(3.0)
                    counter.bump("exponentiations", 7)
        detail = {row["phase"]: row for row in ledger.detail()}
        assert detail["scan"]["seconds"] == pytest.approx(1.0)
        assert detail["scan/SM"]["seconds"] == pytest.approx(3.0)
        assert detail["scan/SM"]["ops"] == {"exponentiations": 7}
        # The rollup merges nested paths into the outermost phase.
        rows = rows_by_key(ledger.breakdown())
        assert rows[("scan", "C1")]["seconds"] == pytest.approx(4.0)
        assert rows[("scan", "C1")]["ops"] == {"encryptions": 1,
                                               "exponentiations": 7}

    def test_party_override_and_inheritance(self):
        clock, counter = FakeClock(), FakeCounter()
        ledger = CostLedger([counter], party="C1", clock=clock)
        with ledger.activate():
            with cost_scope("scan", party="C2"):
                clock.advance(1.0)
                with cost_scope("SM"):       # inherits C2 from the parent
                    clock.advance(2.0)
                    counter.bump("decryptions", 4)
        rows = rows_by_key(ledger.finish())
        assert set(rows) == {("scan", "C2")}
        assert rows[("scan", "C2")]["seconds"] == pytest.approx(3.0)
        assert rows[("scan", "C2")]["ops"] == {"decryptions": 4}

    def test_unscoped_work_lands_in_other_without_idle_seconds(self):
        clock, counter = FakeClock(), FakeCounter()
        ledger = CostLedger([counter], clock=clock)
        # Before activation: ops count, idle seconds do not.
        counter.bump("encryptions", 2)
        clock.advance(50.0)
        with ledger.activate():
            with cost_scope("scan"):
                clock.advance(1.0)
        # Between activations: same rule.
        counter.bump("encryptions", 3)
        clock.advance(500.0)
        with ledger.activate():
            clock.advance(0.25)              # activated but unscoped
        rows = rows_by_key(ledger.finish())
        assert rows[("other", "C1")]["ops"] == {"encryptions": 5}
        assert rows[("other", "C1")]["seconds"] == pytest.approx(0.25)
        total = sum(row["seconds"] for row in rows.values())
        assert total == pytest.approx(1.25)  # 550s of idle time excluded

    def test_total_ops_equals_counter_deltas(self):
        clock, counter = FakeClock(), FakeCounter()
        counter.bump("encryptions", 11)      # pre-existing count
        ledger = CostLedger([counter], clock=clock)
        with ledger.activate():
            with cost_scope("a"):
                counter.bump("encryptions", 5)
                counter.bump("exponentiations", 2)
            counter.bump("decryptions", 1)
        ledger.finish()
        assert ledger.total_ops() == {"encryptions": 5,
                                      "exponentiations": 2,
                                      "decryptions": 1}

    def test_extras_are_sampled_and_exception_safe(self):
        clock = FakeClock()
        hits = {"n": 0}

        def broken():
            raise RuntimeError("engine detached")

        ledger = CostLedger([], extras={"pool_hits": lambda: hits["n"],
                                        "broken": broken}, clock=clock)
        with ledger.activate():
            with cost_scope("scan"):
                hits["n"] = 9
                clock.advance(1.0)
        rows = rows_by_key(ledger.finish())
        assert rows[("scan", "C1")]["ops"] == {"pool_hits": 9}

    def test_scope_without_ledger_is_shared_noop(self):
        assert _ACTIVE_LEDGER.get() is None
        assert cost_scope("scan") is _NOOP_SCOPE
        with cost_scope("scan"):
            pass  # must not raise

    def test_wrap_span_passthrough_and_pairing(self):
        class Span:
            def __init__(self):
                self.attrs = {}
                self.span_id = "s1"
                self.trace_id = "t1"

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return None

            def set_attribute(self, name, value):
                self.attrs[name] = value

        span = Span()
        assert wrap_span(span, "SM") is span  # no ledger armed
        clock = FakeClock()
        ledger = CostLedger([], clock=clock)
        with ledger.activate():
            wrapped = wrap_span(span, "SM")
            assert wrapped is not span
            with wrapped:
                clock.advance(2.0)
                wrapped.set_attribute("k", 1)
            assert wrapped.span_id == "s1" and wrapped.trace_id == "t1"
        assert span.attrs == {"k": 1}
        rows = rows_by_key(ledger.finish())
        assert rows[("SM", "C1")]["seconds"] == pytest.approx(2.0)

    def test_record_phase_metrics_emits_both_families(self):
        registry = MetricsRegistry()
        record_phase_metrics(
            [{"phase": "scan", "party": "C1", "seconds": 0.5,
              "ops": {"encryptions": 3, "pool_hits": 0}}],
            registry=registry)
        snapshot = registry.snapshot()
        seconds = snapshot["repro_phase_seconds"]["values"]["scan,C1"]
        assert seconds["count"] == 1 and seconds["sum"] == pytest.approx(0.5)
        ops = snapshot["repro_phase_ops_total"]["values"]
        assert ops == {"scan,C1,encryptions": 3.0}  # zero-count op dropped

    def test_helpers_render(self):
        rows = [{"phase": "scan", "party": "C1", "seconds": 0.5,
                 "ops": {"encryptions": 3}},
                {"phase": "scan", "party": "C2", "seconds": 0.25, "ops": {}}]
        assert phase_seconds_of(rows) == {"scan": pytest.approx(0.75)}
        table = format_cost_table(rows)
        assert "scan" in table and "0.5000" in table
        assert format_cost_table([]).startswith("(no cost attribution")


# ---------------------------------------------------------------------------
# sampling profiler
# ---------------------------------------------------------------------------

class Frame:
    """Minimal stand-in for a Python frame object."""

    class Code:
        def __init__(self, filename, name):
            self.co_filename = filename
            self.co_name = name

    def __init__(self, filename, name, back=None):
        self.f_code = self.Code(filename, name)
        self.f_back = back


def make_stack(*names):
    """Frames for root-to-leaf ``names``; returns the leaf frame."""
    frame = None
    for name in names:
        frame = Frame("/src/mod.py", name, back=frame)
    return frame


class TestSamplingProfiler:
    def test_sample_once_with_injected_frames(self):
        profiler = SamplingProfiler()
        leaf = make_stack("main", "run", "powmod")
        assert profiler.sample_once(frames={1: leaf}) == 1
        profiler.sample_once(frames={1: leaf})
        counts = profiler.snapshot_counts()
        assert counts == {"mod.py:main;mod.py:run;mod.py:powmod": 2}

    def test_collapsed_output_is_flamegraph_format(self):
        profiler = SamplingProfiler()
        hot, cold = make_stack("main", "hot"), make_stack("main", "cold")
        for _ in range(3):
            profiler.sample_once(frames={1: hot})
        profiler.sample_once(frames={1: cold})
        lines = profiler.collapsed().splitlines()
        assert lines[0] == "mod.py:main;mod.py:hot 3"  # sorted by count
        assert lines[1] == "mod.py:main;mod.py:cold 1"

    def test_collapsed_since_snapshot_diffs(self):
        profiler = SamplingProfiler()
        stack = make_stack("main", "work")
        profiler.sample_once(frames={1: stack})
        before = profiler.snapshot_counts()
        profiler.sample_once(frames={1: stack})
        assert profiler.collapsed(since=before) \
            == "mod.py:main;mod.py:work 1\n"
        assert profiler.collapsed(since=profiler.snapshot_counts()) == ""

    def test_skip_thread_and_max_depth(self):
        profiler = SamplingProfiler(max_depth=2)
        deep = make_stack("a", "b", "c", "d")
        profiler.sample_once(frames={1: deep, 2: deep}, skip_thread=2)
        (stack, count), = profiler.snapshot_counts().items()
        assert count == 1
        assert stack.count(";") == 1  # depth capped at 2 frames

    def test_reset_and_sample_counter(self):
        profiler = SamplingProfiler()
        profiler.sample_once(frames={1: make_stack("main")})
        assert profiler.samples == 1
        profiler.reset()
        assert profiler.samples == 0 and profiler.snapshot_counts() == {}

    def test_live_thread_smoke(self):
        profiler = SamplingProfiler(interval=0.005)
        stop = threading.Event()

        def busy():
            while not stop.is_set():
                sum(range(1000))

        worker = threading.Thread(target=busy)
        worker.start()
        try:
            with profiler:
                time.sleep(0.15)
                assert profiler.running
            assert not profiler.running
        finally:
            stop.set()
            worker.join()
        assert profiler.samples > 0
        assert profiler.collapsed().strip()

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_profile_window_without_armed_profiler(self):
        result = profile_window(None, seconds=0.06)
        assert result["armed"] is False
        assert result["seconds"] == pytest.approx(0.06)
        assert result["samples"] >= 0

    def test_profile_window_clamps_and_uses_armed_profiler(self):
        profiler = SamplingProfiler(interval=0.005)
        with profiler:
            result = profile_window(profiler, seconds=1e9, max_seconds=0.1)
        assert result["armed"] is True
        assert result["seconds"] == pytest.approx(0.1)
        assert result["interval"] == pytest.approx(0.005)


# ---------------------------------------------------------------------------
# serial acceptance: the tentpole invariants on the real protocols
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def serial_system():
    from repro.core.cloud import FederatedCloud
    from repro.core.roles import DataOwner, QueryClient
    from repro.crypto.paillier import generate_keypair
    from repro.db.datasets import synthetic_uniform

    keypair = generate_keypair(256, Random(5150))
    table = synthetic_uniform(n_records=8, dimensions=2, distance_bits=7,
                              seed=5)
    owner = DataOwner(table, keypair=keypair, rng=Random(1))
    cloud = FederatedCloud.deploy(keypair, rng=Random(2))
    cloud.c1.host_database(owner.encrypt_database())
    client = QueryClient(keypair.public_key, 2, rng=Random(3))
    return cloud, client


def assert_cost_invariants(report, expected_phases):
    rows = report.cost_breakdown
    assert rows, "run_with_report must attach cost rows"
    phases = {row["phase"] for row in rows}
    assert expected_phases <= phases

    # Invariant 1: phase seconds sum to the wall time within 1% (serial
    # mode: both parties execute inline, so every row counts).
    total_seconds = sum(row["seconds"] for row in rows)
    assert total_seconds == pytest.approx(report.wall_time_seconds,
                                          rel=0.01), (
        f"phase seconds {total_seconds} vs wall {report.wall_time_seconds}")

    # Invariant 2: phase op counts sum exactly to the run's counters.
    stats = report.stats
    totals: dict[str, float] = {}
    for row in rows:
        for op, count in row["ops"].items():
            totals[op] = totals.get(op, 0) + count
    assert totals.get("encryptions", 0) \
        == stats.c1_encryptions + stats.c2_encryptions
    assert totals.get("decryptions", 0) == stats.c2_decryptions
    assert totals.get("exponentiations", 0) \
        == stats.c1_exponentiations + stats.c2_exponentiations
    assert totals.get("homomorphic_additions", 0) \
        == stats.c1_homomorphic_additions \
        + stats.extra.get("c2_homomorphic_additions", 0)

    # Invariant 3: the serial runtime attributes C2's handler work to C2.
    c2_rows = [row for row in rows if row["party"] == "C2"]
    assert c2_rows and any(row["ops"].get("decryptions") for row in c2_rows)


def test_sknn_basic_cost_breakdown(serial_system):
    from repro.core.sknn_basic import SkNNBasic
    from repro.telemetry.metrics import get_registry, reset_registry

    cloud, client = serial_system
    reset_registry()
    protocol = SkNNBasic(cloud)
    protocol.run_with_report(client.encrypt_query([3, 4]), 2,
                             distance_bits=7)
    report = protocol.last_report
    assert_cost_invariants(report, {"scan", "select", "deliver"})
    assert set(report.phase_seconds) >= {"scan", "select", "deliver"}

    snapshot = get_registry().snapshot()
    assert any(key.startswith("scan,") for key in
               snapshot["repro_phase_seconds"]["values"])
    assert any(key.startswith("scan,") for key in
               snapshot["repro_phase_ops_total"]["values"])
    reset_registry()


def test_sknn_secure_cost_breakdown(serial_system):
    from repro.core.sknn_secure import SkNNSecure
    from repro.telemetry.metrics import reset_registry

    cloud, client = serial_system
    reset_registry()
    protocol = SkNNSecure(cloud, distance_bits=7)
    protocol.run_with_report(client.encrypt_query([3, 4]), 2,
                             distance_bits=7)
    assert_cost_invariants(
        protocol.last_report,
        {"scan", "decompose", "select", "extract", "eliminate", "deliver"})
    reset_registry()


def test_cost_breakdown_roundtrips_report_payload(serial_system):
    from repro.core.sknn_base import SkNNRunReport
    from repro.core.sknn_basic import SkNNBasic

    cloud, client = serial_system
    protocol = SkNNBasic(cloud)
    protocol.run_with_report(client.encrypt_query([3, 4]), 2,
                             distance_bits=7)
    payload = protocol.last_report.as_payload()
    restored = SkNNRunReport.from_payload(payload)
    assert restored.cost_breakdown == protocol.last_report.cost_breakdown
