"""Unit tests for the benchmark-history store, regression gate and CLI.

The regression semantics under test: the latest record is compared against
the median of comparable prior runs; the gate is ``median + max(k·1.4826·
MAD, rel_slack·|median|, abs_floor)``, flipped for higher-is-better
metrics.  The CLI tests drive ``repro bench run|report|check`` in-process,
including the acceptance scenario — a clean trajectory passes, an injected
synthetic regression fails the check with a nonzero exit code.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchHistory,
    check_history,
    numeric_leaves,
    provenance_block,
    render_trend,
)
from repro.bench.history import higher_is_better
from repro.cli import main


def record(value: float, metric: str = "query_s", backend: str = "python",
           key_size: int = 256, **extra_metrics) -> dict:
    metrics = {metric: value}
    metrics.update(extra_metrics)
    return {
        "bench": "demo",
        "provenance": {"git_sha": "abc", "crypto_backend": backend,
                       "key_size": key_size, "python": "3.11"},
        "params": {},
        "metrics": metrics,
    }


class TestNumericLeaves:
    def test_flattens_nested_and_drops_non_numeric(self):
        leaves = numeric_leaves({
            "a": 1, "b": 2.5, "flag": True, "name": "x",
            "nested": {"x": 3, "deeper": {"y": 4}},
        })
        assert leaves == {"a": 1.0, "b": 2.5, "nested.x": 3.0,
                          "nested.deeper.y": 4.0}

    def test_empty_and_none(self):
        assert numeric_leaves(None) == {}
        assert numeric_leaves({}) == {}


class TestHistoryStore:
    def test_append_load_roundtrip(self, tmp_path):
        history = BenchHistory(tmp_path / "hist")
        history.append("demo", record(1.0))
        history.append("demo", record(2.0))
        loaded = history.load("demo")
        assert [r["metrics"]["query_s"] for r in loaded] == [1.0, 2.0]
        assert history.names() == ["demo"]
        assert history.load("missing") == []

    def test_torn_append_does_not_poison_the_file(self, tmp_path):
        history = BenchHistory(tmp_path)
        path = history.append("demo", record(1.0))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"bench": "demo", "metr')  # simulated crash
        assert len(history.load("demo")) == 1

    def test_bench_names_are_sanitized_into_filenames(self, tmp_path):
        history = BenchHistory(tmp_path)
        path = history.append("a/b c", record(1.0))
        assert path.name == "a_b_c.jsonl"


class TestRegressionGate:
    def test_stable_trajectory_passes(self):
        records = [record(1.0 + 0.01 * i) for i in range(6)]
        assert check_history("demo", records) == []

    def test_injected_regression_fails(self):
        records = [record(1.0), record(1.02), record(0.98), record(10.0)]
        findings = check_history("demo", records)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.metric == "query_s" and finding.value == 10.0
        assert finding.baseline == pytest.approx(1.0)
        assert "above the gate" in finding.describe()

    def test_higher_is_better_direction(self):
        assert higher_is_better("encrypt_per_second")
        assert higher_is_better("phase.scan.throughput")
        assert not higher_is_better("query_s")
        records = [record(1000.0, metric="ops_per_second") for _ in range(4)]
        records.append(record(100.0, metric="ops_per_second"))
        findings = check_history("demo", records)
        assert len(findings) == 1
        assert "below the gate" in findings[0].describe()
        # A big *improvement* never fails.
        records[-1] = record(9000.0, metric="ops_per_second")
        assert check_history("demo", records) == []

    def test_min_history_gate(self):
        records = [record(1.0), record(1.0), record(50.0)]
        assert check_history("demo", records, min_history=3) == []
        records.insert(0, record(1.0))
        assert len(check_history("demo", records, min_history=3)) == 1

    def test_mad_widens_the_gate_for_noisy_metrics(self):
        noisy = [record(v) for v in (1.0, 1.6, 0.7, 1.4, 0.9, 1.5)]
        # 2.2 is ~2x the median but within the MAD-scaled band.
        assert check_history("demo", noisy + [record(2.2)]) == []
        assert len(check_history("demo", noisy + [record(9.0)])) == 1

    def test_deterministic_metrics_use_relative_slack(self):
        counts = [record(1.0, encryptions=650) for _ in range(5)]
        # MAD is zero; a 50%+ jump in a deterministic counter must flag.
        bumped = record(1.0, encryptions=1200)
        findings = check_history("demo", counts + [bumped])
        assert [f.metric for f in findings] == ["encryptions"]

    def test_incomparable_runs_are_excluded_from_the_baseline(self):
        slow_backend = [record(10.0, backend="python") for _ in range(5)]
        fast = [record(1.0, backend="gmpy2") for _ in range(4)]
        # The gmpy2 candidate is judged only against gmpy2 priors — the
        # python runs' 10x slower baseline neither masks nor trips it.
        assert check_history("demo", slow_backend + fast) == []
        regressed = record(5.0, backend="gmpy2")
        findings = check_history("demo", slow_backend + fast + [regressed])
        assert len(findings) == 1

    def test_fewer_than_two_records_no_verdict(self):
        assert check_history("demo", []) == []
        assert check_history("demo", [record(1.0)]) == []


class TestTrendReport:
    def test_render_trend_contains_sparkline_and_stats(self):
        records = [record(float(v)) for v in (1, 2, 3, 4)]
        text = render_trend("demo", records)
        assert "demo — 4 runs" in text
        assert "query_s" in text and "min=1" in text and "last=4" in text
        assert any(block in text for block in "▁▂▃▄▅▆▇█")

    def test_render_trend_empty(self):
        assert "no history" in render_trend("demo", [])


class TestProvenance:
    def test_block_has_required_keys(self):
        block = provenance_block(key_size=256)
        assert set(block) == {"git_sha", "crypto_backend", "python",
                              "key_size", "timestamp"}
        assert block["key_size"] == 256
        assert block["crypto_backend"]
        # In this checkout the sha must resolve to a real revision.
        assert block["git_sha"] != "unknown"


class TestBenchCLI:
    def run_cli(self, *argv) -> int:
        return main(list(argv))

    def test_run_then_check_passes_then_injected_regression_fails(
            self, tmp_path, capsys):
        history_dir = str(tmp_path / "history")
        for _ in range(3):
            assert self.run_cli("bench", "run", "--quick",
                                "--filter", "paillier_kernel",
                                "--history-dir", history_dir) == 0
        assert self.run_cli("bench", "check",
                            "--history-dir", history_dir) == 0
        capsys.readouterr()

        # Inject a synthetic 10x regression as the newest record.
        history = BenchHistory(history_dir)
        records = history.load("paillier_kernel")
        slow = json.loads(json.dumps(records[-1]))
        for metric in slow["metrics"]:
            if metric.endswith("_s"):
                slow["metrics"][metric] *= 10.0
            else:
                slow["metrics"][metric] /= 10.0
        history.append("paillier_kernel", slow)

        assert self.run_cli("bench", "check",
                            "--history-dir", history_dir) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "paillier_kernel" in out

    def test_report_renders_trend(self, tmp_path, capsys):
        history_dir = str(tmp_path / "history")
        history = BenchHistory(history_dir)
        for value in (1.0, 1.1, 1.05):
            history.append("demo", record(value))
        assert self.run_cli("bench", "report",
                            "--history-dir", history_dir) == 0
        out = capsys.readouterr().out
        assert "demo — 3 runs" in out and "query_s" in out

    def test_check_without_history_is_an_error(self, tmp_path, capsys):
        assert self.run_cli("bench", "check", "--history-dir",
                            str(tmp_path / "none")) == 2
        assert "no history" in capsys.readouterr().err

    def test_run_with_unknown_filter_is_an_error(self, tmp_path, capsys):
        assert self.run_cli("bench", "run", "--filter", "nope",
                            "--history-dir", str(tmp_path)) == 2
        assert "no bench matches" in capsys.readouterr().err
