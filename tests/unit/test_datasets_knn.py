"""Unit tests for the datasets module and the plaintext kNN engines."""

from __future__ import annotations

from random import Random

import pytest

from repro.db.datasets import (
    heart_disease_example_query,
    heart_disease_schema,
    heart_disease_table,
    max_attribute_value_for_distance_bits,
    synthetic_clustered,
    synthetic_schema,
    synthetic_uniform,
)
from repro.db.knn import KDTreeKNN, LinearScanKNN, squared_euclidean
from repro.exceptions import DatabaseError, QueryError


class TestHeartDiseaseDataset:
    def test_table_matches_paper_table_1(self):
        table = heart_disease_table()
        assert len(table) == 6
        assert table.get("t1").values == (63, 1, 1, 145, 233, 1, 3, 0, 6, 0)
        assert table.get("t6").values == (77, 1, 4, 125, 304, 0, 1, 3, 3, 4)

    def test_schema_matches_paper_table_2(self):
        schema = heart_disease_schema()
        assert schema.names == ("age", "sex", "cp", "trestbps", "chol", "fbs",
                                "slope", "ca", "thal", "num")
        assert schema.attribute("sex").maximum == 1

    def test_query_has_nine_attributes(self):
        assert len(heart_disease_example_query()) == 9
        assert heart_disease_example_query()[0] == 58

    def test_without_diagnosis_column(self):
        table = heart_disease_table(include_diagnosis=False)
        assert table.dimensions == 9
        assert table.get("t4").values == (59, 1, 4, 144, 200, 1, 2, 2, 6)

    def test_paper_example_1_nearest_neighbors(self):
        """Example 1: for k=2 the nearest records to Q are t4 and t5."""
        table = heart_disease_table(include_diagnosis=False)
        engine = LinearScanKNN(table)
        neighbors = engine.query(heart_disease_example_query(), 2)
        assert {result.record_id for result in neighbors} == {"t4", "t5"}


class TestSyntheticDatasets:
    def test_uniform_shape(self):
        table = synthetic_uniform(n_records=30, dimensions=5, distance_bits=10,
                                  seed=1)
        assert len(table) == 30
        assert table.dimensions == 5

    def test_uniform_is_seeded(self):
        first = synthetic_uniform(10, 3, 8, seed=7)
        second = synthetic_uniform(10, 3, 8, seed=7)
        assert first.row_values() == second.row_values()

    def test_uniform_different_seeds_differ(self):
        first = synthetic_uniform(10, 3, 8, seed=1)
        second = synthetic_uniform(10, 3, 8, seed=2)
        assert first.row_values() != second.row_values()

    def test_distances_fit_distance_bits(self):
        distance_bits = 9
        table = synthetic_uniform(20, 4, distance_bits, seed=3)
        limit = 1 << distance_bits
        rows = table.row_values()
        for left in rows:
            for right in rows:
                assert squared_euclidean(left, right) < limit

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(DatabaseError):
            synthetic_uniform(0, 3, 8)
        with pytest.raises(DatabaseError):
            max_attribute_value_for_distance_bits(0, 8)
        with pytest.raises(DatabaseError):
            max_attribute_value_for_distance_bits(3, 0)

    def test_max_attribute_value_bound(self):
        for dimensions in (1, 3, 10):
            for bits in (4, 8, 16):
                value = max_attribute_value_for_distance_bits(dimensions, bits)
                assert dimensions * value * value < (1 << bits) or value == 1

    def test_synthetic_schema(self):
        schema = synthetic_schema(6, value_bits=5)
        assert schema.dimensions == 6
        assert schema.attribute("attr0").maximum == 31

    def test_clustered_dataset(self):
        table = synthetic_clustered(40, 3, 12, clusters=3, seed=5)
        assert len(table) == 40
        with pytest.raises(DatabaseError):
            synthetic_clustered(10, 3, 12, clusters=0)


class TestPlaintextKNN:
    def make_table(self):
        return synthetic_uniform(50, 3, 12, seed=11)

    def test_linear_scan_known_small_case(self):
        from repro.db.schema import Schema
        from repro.db.table import Table
        schema = Schema.from_names(["x", "y"], maximum=10)
        table = Table.from_rows(schema, [[0, 0], [5, 5], [1, 1], [9, 9]])
        engine = LinearScanKNN(table)
        results = engine.query([0, 0], 2)
        assert [r.record_id for r in results] == ["t1", "t3"]
        assert [r.squared_distance for r in results] == [0, 2]

    def test_kdtree_matches_linear_scan(self):
        table = self.make_table()
        linear = LinearScanKNN(table)
        tree = KDTreeKNN(table)
        rng = Random(4)
        for _ in range(10):
            query = [rng.randrange(0, 30) for _ in range(3)]
            for k in (1, 3, 7):
                linear_ids = [r.record_id for r in linear.query(query, k)]
                tree_ids = [r.record_id for r in tree.query(query, k)]
                assert linear_ids == tree_ids

    def test_tie_breaking_by_record_order(self):
        from repro.db.schema import Schema
        from repro.db.table import Table
        schema = Schema.from_names(["x"], maximum=10)
        table = Table.from_rows(schema, [[4], [6], [6], [4]])
        engine = LinearScanKNN(table)
        results = engine.query([5], 3)
        assert [r.record_id for r in results] == ["t1", "t2", "t3"]

    def test_k_equal_to_table_size(self):
        table = self.make_table()
        results = LinearScanKNN(table).query([0, 0, 0], len(table))
        assert len(results) == len(table)

    def test_invalid_queries_rejected(self):
        table = self.make_table()
        engine = LinearScanKNN(table)
        with pytest.raises(QueryError):
            engine.query([0, 0, 0], 0)
        with pytest.raises(QueryError):
            engine.query([0, 0, 0], len(table) + 1)
        with pytest.raises(QueryError):
            engine.query([0, 0], 1)
        with pytest.raises(QueryError):
            engine.query([0, 0, 0], "3")

    def test_empty_table_rejected(self):
        from repro.db.schema import Schema
        from repro.db.table import Table
        table = Table(Schema.from_names(["x"]))
        with pytest.raises(QueryError):
            LinearScanKNN(table).query([1], 1)

    def test_squared_euclidean_dimension_check(self):
        with pytest.raises(QueryError):
            squared_euclidean([1, 2], [1])

    def test_neighbor_result_exposes_record_id(self):
        table = self.make_table()
        result = LinearScanKNN(table).query([0, 0, 0], 1)[0]
        assert result.record_id == result.record.record_id
