"""TcpChannel: the DuplexChannel interface over a real socket pair.

Includes the byte-accounting comparability check of the distributed-runtime
PR: the in-memory channel and the TCP channel must report the *same*
``bytes_transferred`` for the same payload, because both size their traffic
with the same wire codec.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.exceptions import ChannelError
from repro.network.channel import DuplexChannel
from repro.transport.channel import TcpChannel
from repro.transport.wire import WireCodec


@pytest.fixture()
def channel_pair(public_key):
    left, right = socket.socketpair()
    c1_side = TcpChannel(left, WireCodec(public_key), "C1", "C2")
    c2_side = TcpChannel(right, WireCodec(public_key), "C2", "C1")
    yield c1_side, c2_side
    c1_side.close()
    c2_side.close()


class TestTcpChannel:
    def test_send_receive_both_directions(self, channel_pair, public_key):
        c1_side, c2_side = channel_pair
        ciphertext = public_key.encrypt(11)
        c1_side.send("C1", [ciphertext, 5], tag="ping")
        received = c2_side.receive("C2", expected_tag="ping")
        assert received[0].value == ciphertext.value
        assert received[1] == 5
        c2_side.send("C2", "pong", tag="reply")
        assert c1_side.receive("C1", expected_tag="reply") == "pong"

    def test_runs_both_parties_is_false(self, channel_pair):
        c1_side, _ = channel_pair
        assert c1_side.runs_both_parties is False
        assert DuplexChannel.runs_both_parties is True

    def test_only_local_role_may_send_or_receive(self, channel_pair):
        c1_side, _ = channel_pair
        with pytest.raises(ChannelError):
            c1_side.send("C2", 1)
        with pytest.raises(ChannelError):
            c1_side.receive("C2")
        with pytest.raises(ChannelError):
            c1_side.pending("C2")

    def test_tag_mismatch_raises(self, channel_pair):
        c1_side, c2_side = channel_pair
        c1_side.send("C1", 1, tag="a")
        with pytest.raises(ChannelError, match="expected message tagged"):
            c2_side.receive("C2", expected_tag="b")

    def test_next_tag_peeks_without_consuming(self, channel_pair):
        c1_side, c2_side = channel_pair
        c1_side.send("C1", 123, tag="step.one")
        assert c2_side.next_tag() == "step.one"
        assert c2_side.pending("C2") == 1
        assert c2_side.receive("C2", expected_tag="step.one") == 123
        assert c2_side.pending("C2") == 0

    def test_remote_error_frame_raises(self, channel_pair):
        c1_side, c2_side = channel_pair
        c2_side.send("C2", "something broke", tag="transport.error")
        with pytest.raises(ChannelError, match="something broke"):
            c1_side.receive("C1", expected_tag="whatever")

    def test_closed_peer_raises(self, channel_pair):
        c1_side, c2_side = channel_pair
        c2_side.close()
        with pytest.raises(ChannelError):
            c1_side.receive("C1")

    def test_traffic_counted_on_both_sides(self, channel_pair, public_key):
        c1_side, c2_side = channel_pair
        c1_side.send("C1", [public_key.encrypt(1), 7], tag="t")
        c2_side.receive("C2")
        sent = c1_side.traffic["C1"]
        seen = c2_side.traffic["C1"]
        assert sent.messages == seen.messages == 1
        assert sent.ciphertexts == seen.ciphertexts == 1
        assert sent.plaintext_items == seen.plaintext_items == 1
        assert sent.bytes_transferred == seen.bytes_transferred > 0
        assert c1_side.total_traffic().messages == 1
        c1_side.reset_accounting()
        assert c1_side.total_traffic().bytes_transferred == 0

    def test_byte_accounting_matches_in_memory_channel(self, channel_pair,
                                                       public_key):
        """Same payload, same tag -> identical byte counts on both transports
        (the in-memory channel sizes its accounting with the wire codec)."""
        c1_side, c2_side = channel_pair
        in_memory = DuplexChannel("C1", "C2")
        payloads = [
            [public_key.encrypt(3), public_key.encrypt(-4)],
            [2, [(0, public_key.encrypt(9))]],
            [],
            "text",
            {"nested": (1, None, True)},
        ]
        for index, payload in enumerate(payloads):
            tag = f"tag.{index}"
            in_memory.send("C1", payload, tag=tag)
            c1_side.send("C1", payload, tag=tag)
            c2_side.receive("C2", expected_tag=tag)
        assert (in_memory.traffic["C1"].bytes_transferred
                == c1_side.traffic["C1"].bytes_transferred)
        assert (in_memory.traffic["C1"].ciphertexts
                == c1_side.traffic["C1"].ciphertexts)
        assert (in_memory.traffic["C1"].plaintext_items
                == c1_side.traffic["C1"].plaintext_items)

    def test_concurrent_sends_are_serialized(self, channel_pair):
        """Many threads sending on one channel must interleave at frame
        granularity (the send lock), never corrupt the stream."""
        c1_side, c2_side = channel_pair
        count = 40

        def sender(value: int) -> None:
            c1_side.send("C1", [value] * 50, tag="burst")

        threads = [threading.Thread(target=sender, args=(i,))
                   for i in range(count)]
        for thread in threads:
            thread.start()
        received = [c2_side.receive("C2", expected_tag="burst")
                    for _ in range(count)]
        for thread in threads:
            thread.join()
        values = sorted(batch[0] for batch in received)
        assert values == list(range(count))
        assert all(batch == [batch[0]] * 50 for batch in received)
