"""Per-tag traffic accounting: identical across transports, additive on merge.

Satellite of the telemetry PR.  The in-memory ``DuplexChannel`` sizes its
traffic with the exact TCP wire encoding, so for *every* payload shape the
per-tag byte and message counts must match what a real ``TcpChannel`` pair
measures on both ends of a socket — and merging shard-level
``TrafficStats`` must equal the sum of the parts, per tag and in aggregate.
"""

from __future__ import annotations

import socket

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.channel import DuplexChannel
from repro.network.stats import TrafficStats
from repro.telemetry import tracing
from repro.transport.channel import TcpChannel
from repro.transport.wire import WireCodec

TAGS = ("SM.masked_operands", "SSED.batch", "SkNN.masked_results",
        "transport.query", "")


def payload_strategy(ciphertext_values):
    scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10 ** 30), max_value=10 ** 30),
        st.text(max_size=8),
        st.sampled_from(ciphertext_values),
    )
    return st.recursive(
        scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.lists(children, max_size=3).map(tuple),
            st.dictionaries(st.text(max_size=5), children, max_size=3),
        ),
        max_leaves=10,
    )


def tcp_pair(public_key):
    left_sock, right_sock = socket.socketpair()
    left = TcpChannel(left_sock, WireCodec(public_key), "C1", "C2")
    right = TcpChannel(right_sock, WireCodec(public_key), "C2", "C1")
    return left, right


class TestCrossTransportParity:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_per_tag_counts_identical_for_every_payload_shape(
            self, data, public_key):
        ciphertexts = [public_key.encrypt(v) for v in (-2, 0, 9)]
        batch = data.draw(st.lists(
            st.tuples(st.sampled_from(TAGS),
                      payload_strategy(ciphertexts)),
            min_size=1, max_size=6))

        duplex = DuplexChannel("C1", "C2")
        left, right = tcp_pair(public_key)
        try:
            for tag, payload in batch:
                duplex.send("C1", payload, tag=tag)
                duplex.receive("C2")
                left.send("C1", payload, tag=tag)
                right.receive("C2")

            simulated = duplex.traffic["C1"]
            sent = left.traffic["C1"]        # sender-side measurement
            received = right.traffic["C1"]   # receiver attributes to sender
            for measured in (sent, received):
                assert measured.per_tag_snapshot() == \
                    simulated.per_tag_snapshot()
                assert measured.snapshot() == simulated.snapshot()
        finally:
            left.close()
            right.close()

    def test_trace_context_costs_the_same_bytes_on_both_transports(
            self, public_key):
        """With a trace active both transports stamp the envelope, so the
        accounting stays comparable (and bigger than the untraced run)."""
        payload = [public_key.encrypt(3), [1, 2]]

        def run_both():
            duplex = DuplexChannel("C1", "C2")
            left, right = tcp_pair(public_key)
            try:
                duplex.send("C1", payload, tag="SM.t")
                duplex.receive("C2")
                left.send("C1", payload, tag="SM.t")
                right.receive("C2")
                return (duplex.traffic["C1"].bytes_transferred,
                        left.traffic["C1"].bytes_transferred,
                        right.traffic["C1"].bytes_transferred)
            finally:
                left.close()
                right.close()

        plain = run_both()
        with tracing.trace("query.test", party="C1") as root:
            traced = run_both()
        tracing.get_tracer().take(root.trace_id)  # drain the collector
        assert plain[0] == plain[1] == plain[2]
        assert traced[0] == traced[1] == traced[2]
        assert traced[0] > plain[0]


class TestMergedStats:
    @given(shards=st.lists(
        st.lists(st.tuples(st.sampled_from(TAGS),
                           st.integers(min_value=0, max_value=3),
                           st.integers(min_value=0, max_value=2),
                           st.integers(min_value=0, max_value=5000)),
                 max_size=5),
        min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_merged_shard_stats_equal_sum_of_parts(self, shards):
        parts = []
        for shard in shards:
            stats = TrafficStats()
            for tag, ciphertexts, plaintexts, size in shard:
                stats.record(ciphertexts, plaintexts, size, tag=tag)
            parts.append(stats)

        merged = TrafficStats()
        for part in parts:
            merged = merged.merged_with(part)

        for key, value in merged.snapshot().items():
            assert value == sum(part.snapshot()[key] for part in parts)
        expected_tags: dict[str, dict[str, int]] = {}
        for part in parts:
            for tag, counts in part.per_tag_snapshot().items():
                bucket = expected_tags.setdefault(
                    tag, {"messages": 0, "bytes": 0})
                bucket["messages"] += counts["messages"]
                bucket["bytes"] += counts["bytes"]
        assert merged.per_tag_snapshot() == expected_tags
        # Merging must not alias the parts' dictionaries.
        merged.record(0, 0, 1, tag="post-merge")
        assert all("post-merge" not in part.per_tag_snapshot()
                   for part in parts)
