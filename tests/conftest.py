"""Shared pytest fixtures for the SkNN reproduction test-suite.

Key generation is by far the slowest part of the test-suite setup, so key
pairs are generated once per session (per size) and shared.  Protocol
correctness does not depend on the key size as long as plaintexts stay far
below ``N``, so tests default to small 128/256-bit keys; the paper-scale key
sizes (512/1024) are exercised by the benchmark harness instead.

All fixtures that involve randomness are seeded so the suite is deterministic.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.core.cloud import FederatedCloud
from repro.crypto.paillier import PaillierKeyPair, generate_keypair
from repro.db.datasets import (
    heart_disease_example_query,
    heart_disease_table,
    synthetic_uniform,
)
from repro.db.encrypted_table import EncryptedTable
from repro.network.party import TwoPartySetting

#: Key sizes used throughout the test-suite (bits).
SMALL_KEY_BITS = 128
MEDIUM_KEY_BITS = 256


# ---------------------------------------------------------------------------
# Key pairs (session-scoped: generated once)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="session")
def small_keypair() -> PaillierKeyPair:
    """A deterministic 128-bit Paillier key pair (fast, for unit tests)."""
    return generate_keypair(SMALL_KEY_BITS, Random(20140707))


@pytest.fixture(scope="session")
def medium_keypair() -> PaillierKeyPair:
    """A deterministic 256-bit Paillier key pair (for integration tests)."""
    return generate_keypair(MEDIUM_KEY_BITS, Random(20140708))


@pytest.fixture()
def public_key(small_keypair: PaillierKeyPair):
    """Public half of the small key pair."""
    return small_keypair.public_key


@pytest.fixture()
def private_key(small_keypair: PaillierKeyPair):
    """Private half of the small key pair."""
    return small_keypair.private_key


# ---------------------------------------------------------------------------
# Protocol settings
# ---------------------------------------------------------------------------

@pytest.fixture()
def setting(small_keypair: PaillierKeyPair) -> TwoPartySetting:
    """A fresh two-party setting (C1/C2) over the small key pair."""
    return TwoPartySetting.create(small_keypair, rng=Random(7))


@pytest.fixture()
def medium_setting(medium_keypair: PaillierKeyPair) -> TwoPartySetting:
    """A fresh two-party setting over the 256-bit key pair."""
    return TwoPartySetting.create(medium_keypair, rng=Random(11))


@pytest.fixture()
def rng() -> Random:
    """A deterministic random generator for per-test randomness."""
    return Random(12345)


# ---------------------------------------------------------------------------
# Databases
# ---------------------------------------------------------------------------

@pytest.fixture(scope="session")
def heart_table():
    """The paper's Table 1 without the diagnosis column (9 attributes)."""
    return heart_disease_table(include_diagnosis=False)


@pytest.fixture(scope="session")
def heart_query():
    """The Example 1 query record."""
    return heart_disease_example_query()


@pytest.fixture(scope="session")
def tiny_table():
    """A small synthetic table (10 records, 3 attributes, l=8)."""
    return synthetic_uniform(n_records=10, dimensions=3, distance_bits=8, seed=42)


@pytest.fixture()
def deployed_cloud(small_keypair: PaillierKeyPair, tiny_table) -> FederatedCloud:
    """A federated cloud already hosting the encrypted tiny table."""
    cloud = FederatedCloud.deploy(small_keypair, rng=Random(99))
    encrypted = EncryptedTable.encrypt_table(tiny_table, small_keypair.public_key,
                                             rng=Random(100))
    cloud.c1.host_database(encrypted)
    return cloud
