"""Shared assertion helpers for the integration tests."""

from __future__ import annotations

from typing import Sequence

from repro.db.knn import LinearScanKNN, squared_euclidean
from repro.db.table import Table


def oracle_answer(table: Table, query: Sequence[int], k: int) -> list[tuple[int, ...]]:
    """The plaintext oracle's answer (ties broken by record order)."""
    return [r.record.values for r in LinearScanKNN(table).query(query, k)]


def assert_valid_knn_answer(table: Table, query: Sequence[int], k: int,
                            neighbors: list[tuple[int, ...]]) -> None:
    """Check a kNN answer allowing arbitrary resolution of distance ties.

    The paper does not prescribe a tie-breaking rule; SkNN_m resolves ties by
    a random choice inside C2 while the plaintext oracle uses record order.
    An answer is therefore correct when (a) it has exactly ``k`` records, (b)
    every returned record occurs in the table, (c) the multiset of distances
    equals the oracle's multiset of the k smallest distances, and (d) the
    returned records are ordered by non-decreasing distance.
    """
    assert len(neighbors) == k
    table_rows = list(table.row_values())
    for record in neighbors:
        assert tuple(record) in table_rows
    returned_distances = [squared_euclidean(record, query) for record in neighbors]
    assert returned_distances == sorted(returned_distances)
    expected_distances = sorted(squared_euclidean(record, query)
                                for record in oracle_answer(table, query, k))
    assert sorted(returned_distances) == expected_distances
