"""Chaos suite: the distributed runtime under injected failures.

The acceptance bar for the resilience layer: an end-to-end SkNN_m query
across two real daemon processes must return **bit-identical** answers to
the in-memory serial stack while the chaos harness injects

(a) seeded frame drops and corruption on the C1<->C2 peer link,
(b) a SIGKILL of the C2 daemon followed by a supervisor restart in the
    middle of a provisioned session, and
(c) a connection reset on Bob's control link to C1.

A query against an unreachable C2 must fail *fast* with a typed, retriable
error — never hang.  Every scenario is driven by a seeded
:class:`~repro.resilience.chaos.ChaosSchedule` whose faults are confined to
a finite frame window, so the retry layer provably converges to a clean run.
"""

from __future__ import annotations

import os
import time
from random import Random

import pytest

from repro.core.roles import DataOwner, QueryClient
from repro.db.datasets import synthetic_uniform
from repro.db.knn import LinearScanKNN
from repro.exceptions import (
    DeadlineExceeded,
    PeerUnavailable,
    ServiceUnavailable,
)
from repro.resilience import ChaosProxy, ChaosSchedule, RetryPolicy, is_retriable
from repro.telemetry import metrics as telemetry_metrics
from repro.transport.client import RemoteCloud
from repro.transport.supervisor import LocalSupervisor

KEY_BITS = int(os.environ.get("REPRO_DISTRIBUTED_BITS", "256"))

N_RECORDS = 10
DIMENSIONS = 2
DISTANCE_BITS = 7
QUERIES = ([3, 4], [6, 1])
K = 2

#: short io deadline so a dropped peer frame surfaces in seconds, not the
#: production default of two minutes
IO_DEADLINE = 5.0
#: client-side retry schedule used by every recovery scenario
RETRY = RetryPolicy(max_attempts=6, base_delay_seconds=0.05, jitter=0.5)
REQUEST_DEADLINE = 60.0


@pytest.fixture(scope="module")
def dataset():
    return synthetic_uniform(n_records=N_RECORDS, dimensions=DIMENSIONS,
                             distance_bits=DISTANCE_BITS, seed=5)


@pytest.fixture(scope="module")
def owner(dataset):
    return DataOwner(dataset, key_size=KEY_BITS, rng=Random(20140709))


_serial_cache: dict[str, list] = {}


def serial_answers(owner, dataset, mode):
    """Reference answers from the in-memory (serial) protocol stack."""
    if mode in _serial_cache:
        return _serial_cache[mode]
    from repro.core.cloud import FederatedCloud

    cloud = FederatedCloud.deploy(owner.keypair, rng=Random(31))
    cloud.c1.host_database(owner.encrypt_database())
    client = QueryClient(owner.public_key, dataset.dimensions, rng=Random(32))
    if mode == "secure":
        from repro.core.sknn_secure import SkNNSecure
        protocol = SkNNSecure(cloud, distance_bits=owner.distance_bit_length())
    else:
        from repro.core.sknn_basic import SkNNBasic
        protocol = SkNNBasic(cloud)
    answers = []
    for query in QUERIES:
        shares = protocol.run(client.encrypt_query(query), K)
        answers.append(client.reconstruct(shares))
    _serial_cache[mode] = answers
    return answers


def counter_total(name: str) -> float:
    entry = telemetry_metrics.get_registry().snapshot().get(name)
    return sum(entry["values"].values()) if entry else 0.0


def provision_through(remote: RemoteCloud, owner: DataOwner) -> None:
    remote.provision(owner.keypair, owner.encrypt_database(),
                     distance_bits=owner.distance_bit_length(), seed=11)


class TestPeerLinkChaos:
    """(a) Seeded drops + corruption on the C1<->C2 protocol link."""

    def test_sknn_m_bit_identical_under_peer_link_faults(self, owner,
                                                         dataset):
        expected = serial_answers(owner, dataset, "secure")
        oracle = LinearScanKNN(dataset)
        retries_before = counter_total("repro_retries_total")
        with LocalSupervisor(io_deadline=IO_DEADLINE) as sup:
            # Frame 0 in each direction is the (unretried) provisioning
            # hello; every later frame is fair game.
            forward = ChaosSchedule.from_seed(
                1401, window=16, drops=1, corrupts=1, first_frame=2)
            backward = ChaosSchedule.from_seed(
                1402, window=16, drops=1, first_frame=2)
            with ChaosProxy(sup.addresses["c2"], forward=forward,
                            backward=backward, label="c1-c2") as proxy:
                remote = RemoteCloud(sup.addresses["c1"],
                                     sup.addresses["c2"],
                                     retry=RETRY,
                                     request_deadline=REQUEST_DEADLINE,
                                     rng=Random(77))
                # C1 must dial C2 through the proxy; Bob's own fetch
                # connection to C2 stays direct (the trust boundary).
                remote.c2_address = proxy.address
                try:
                    provision_through(remote, owner)
                    client = QueryClient(owner.public_key,
                                         dataset.dimensions, rng=Random(33))
                    for query, reference in zip(QUERIES, expected):
                        shares, report = remote.query(
                            client.encrypt_query(query), K, mode="secure")
                        neighbors = client.reconstruct(shares)
                        assert neighbors == reference, (
                            "chaos-exposed answer differs from the serial "
                            "stack")
                        assert neighbors == [
                            r.record.values for r in oracle.query(query, K)]
                finally:
                    remote.close()
                assert proxy.events, "the schedule must actually fire"
        # The recovery was driven by the retry layer and is observable.
        assert counter_total("repro_retries_total") > retries_before
        assert counter_total("repro_chaos_faults_total") > 0


class TestDaemonCrashRecovery:
    """(b) SIGKILL of C2 + supervisor restart, mid-provisioned-session."""

    def test_c2_kill_and_restart_recovers_bit_identical(self, owner,
                                                        dataset):
        expected = serial_answers(owner, dataset, "secure")
        with LocalSupervisor(io_deadline=IO_DEADLINE) as sup:
            remote = sup.provision_from_owner(
                owner, seed=11, retry=RETRY,
                request_deadline=REQUEST_DEADLINE, rng=Random(78))
            client = QueryClient(owner.public_key, dataset.dimensions,
                                 rng=Random(34))
            shares, _ = remote.query(client.encrypt_query(QUERIES[0]), K,
                                     mode="secure")
            assert client.reconstruct(shares) == expected[0]

            sup.kill("c2")
            address = sup.restart_role("c2")
            assert address == sup.addresses["c2"], (
                "a restarted daemon must come back on its previous port")
            # The restarted C2 lost the private key; the retry layer's
            # between-attempt hook re-provisions it transparently.
            shares, _ = remote.query(client.encrypt_query(QUERIES[1]), K,
                                     mode="secure")
            assert client.reconstruct(shares) == expected[1]
            assert sup.restarts["c2"] == 1
            assert counter_total("repro_daemon_restarts_total") >= 1

    def test_monitor_auto_restarts_a_crashed_daemon(self, owner, dataset):
        expected = serial_answers(owner, dataset, "basic")
        with LocalSupervisor(io_deadline=IO_DEADLINE) as sup:
            remote = sup.provision_from_owner(
                owner, seed=11, retry=RETRY,
                request_deadline=REQUEST_DEADLINE, rng=Random(79))
            sup.start_monitor(interval=0.1)
            sup.kill("c2")
            deadline = time.monotonic() + 30.0
            while sup.restarts["c2"] == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert sup.restarts["c2"] == 1, "monitor never restarted C2"
            client = QueryClient(owner.public_key, dataset.dimensions,
                                 rng=Random(35))
            shares, _ = remote.query(client.encrypt_query(QUERIES[0]), K,
                                     mode="basic")
            assert client.reconstruct(shares) == expected[0]


class TestBobConnectionReset:
    """(c) Bob's control link to C1 is reset mid-query; he reconnects."""

    def test_query_survives_a_connection_reset(self, owner, dataset):
        expected = serial_answers(owner, dataset, "secure")
        with LocalSupervisor(io_deadline=IO_DEADLINE) as sup:
            # Forward frames through the proxy: 0 = hello, 1 = provision,
            # 2 = the first transport.query — reset exactly there.
            schedule = ChaosSchedule(resets=frozenset({2}))
            with ChaosProxy(sup.addresses["c1"], forward=schedule,
                            label="bob-c1") as proxy:
                remote = RemoteCloud(proxy.address, sup.addresses["c2"],
                                     retry=RETRY,
                                     request_deadline=REQUEST_DEADLINE,
                                     rng=Random(80))
                try:
                    provision_through(remote, owner)
                    client = QueryClient(owner.public_key,
                                         dataset.dimensions, rng=Random(36))
                    shares, _ = remote.query(client.encrypt_query(QUERIES[0]),
                                             K, mode="secure")
                    assert client.reconstruct(shares) == expected[0]
                finally:
                    remote.close()
                assert remote.c1.reconnects >= 1, (
                    "the client must have re-dialled after the reset")
                assert any(event["action"] == "reset"
                           for event in proxy.events)


class TestFailFast:
    """An unreachable C2 yields a typed error within the deadline budget,
    never a hang."""

    def test_unreachable_c2_fails_fast_and_typed(self, owner, dataset):
        configured = 8.0
        with LocalSupervisor(io_deadline=IO_DEADLINE) as sup:
            remote = sup.provision_from_owner(
                owner, seed=11,
                retry=RetryPolicy(max_attempts=2, base_delay_seconds=0.05,
                                  jitter=0.0),
                request_deadline=configured, rng=Random(81))
            client = QueryClient(owner.public_key, dataset.dimensions,
                                 rng=Random(37))
            sup.kill("c2")
            started = time.monotonic()
            with pytest.raises((PeerUnavailable, DeadlineExceeded)) as info:
                remote.query(client.encrypt_query(QUERIES[0]), K,
                             mode="secure")
            elapsed = time.monotonic() - started
            assert elapsed < 2 * configured, (
                f"failed after {elapsed:.1f}s — not fast failure")
            assert is_retriable(info.value), (
                "the caller must be told a retry could help")
            remote.close()

    def test_degraded_query_server_rejects_with_backpressure(self, owner,
                                                             dataset):
        from repro.service.scheduler import QueryServer
        from repro.transport.client import RemoteStore

        with LocalSupervisor(io_deadline=IO_DEADLINE) as sup:
            remote = sup.provision_from_owner(
                owner, seed=11, retry=RetryPolicy.none(),
                request_deadline=15.0, rng=Random(82))
            store = RemoteStore(remote, mode="basic")
            server = QueryServer(store, batch_size=1, rng=Random(44),
                                 degraded_cooldown_seconds=30.0)
            try:
                session = server.open_session("bob-chaos")
                sup.kill("c2")
                pending = session.submit(list(QUERIES[0]), K)
                with pytest.raises((PeerUnavailable, DeadlineExceeded)):
                    pending.result(timeout=60)
                # The server is now degraded: fresh submissions are
                # rejected immediately with typed backpressure, instead of
                # queueing work destined to time out.
                started = time.monotonic()
                with pytest.raises(ServiceUnavailable) as info:
                    session.submit(list(QUERIES[1]), K)
                assert time.monotonic() - started < 1.0
                assert info.value.retry_after_seconds > 0
                assert counter_total("repro_rejected_queries_total") >= 1
            finally:
                server.stop()
                remote.close()
