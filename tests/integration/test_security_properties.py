"""Security-property tests: what each party is allowed (and not allowed) to see.

These tests check the *observable* security claims of Section 4.3 on the real
protocol transcripts:

* SkNN_b deliberately reveals plaintext distances and the top-k index list to
  the clouds — the tests document that leakage explicitly.
* SkNN_m must not reveal distances or access patterns: every value C2
  decrypts during the minimum-selection phase is either zero (at a random,
  permuted position) or a uniformly random-looking value, the indicator
  vector exchanged between the clouds stays encrypted, and re-running the same
  query produces a different transcript (semantic security / re-randomization).
* Bob's shares individually reveal nothing: the masks from C1 are uniform and
  the masked values from C2 are uniform; only their combination yields data.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.core.cloud import FederatedCloud
from repro.core.roles import DataOwner, QueryClient
from repro.core.sknn_basic import SkNNBasic
from repro.core.sknn_secure import SkNNSecure
from repro.crypto.paillier import Ciphertext
from repro.db.datasets import synthetic_uniform
from repro.db.knn import LinearScanKNN


@pytest.fixture(scope="module")
def security_table():
    return synthetic_uniform(n_records=8, dimensions=2, distance_bits=7, seed=77)


def deploy(table, keypair, seed):
    owner = DataOwner(table, keypair=keypair, rng=Random(seed))
    cloud = FederatedCloud.deploy(keypair, rng=Random(seed + 1))
    cloud.c1.host_database(owner.encrypt_database())
    client = QueryClient(keypair.public_key, table.dimensions, rng=Random(seed + 2))
    return cloud, client


class TestBasicProtocolLeakage:
    def test_c2_sees_plaintext_distances(self, security_table, small_keypair):
        """SkNN_b's documented leakage: the index/distance pairs reach C2."""
        cloud, client = deploy(security_table, small_keypair, seed=300)
        protocol = SkNNBasic(cloud)
        query = [3, 3]
        protocol.run(client.encrypt_query(query), 2)
        # The first message from C1 after the SSED phase carries (i, E(d_i));
        # decrypting them equals the true distances — this is the leak.
        oracle = LinearScanKNN(security_table)
        true_distances = {
            index: security_table.squared_distance(record.record_id, query)
            for index, record in enumerate(security_table)
        }
        # The payload is [k, [(i, E(d_i)), ...]] — k rides along so a remote
        # C2 can run the selection without out-of-band context.
        indexed_messages = [
            payload[1] for payload in cloud.channel.transcript_payloads("C1")
            if isinstance(payload, list) and len(payload) == 2
            and isinstance(payload[1], list) and payload[1]
            and isinstance(payload[1][0], tuple)
        ]
        assert indexed_messages, "expected the distance list on the wire"
        decrypted = {
            index: small_keypair.private_key.decrypt_raw_residue(cipher)
            for index, cipher in indexed_messages[0]
        }
        assert decrypted == true_distances
        # ... and the oracle's winners are exactly the indices C2 returns.
        index_lists = [
            payload for payload in cloud.channel.transcript_payloads("C2")
            if isinstance(payload, list) and payload
            and all(isinstance(item, int) for item in payload)
        ]
        expected_ids = [r.record_id for r in oracle.query(query, 2)]
        expected_indices = [int(record_id[1:]) - 1 for record_id in expected_ids]
        assert index_lists[0] == expected_indices


class TestSecureProtocolHiding:
    def test_no_plaintext_distance_ever_on_the_wire(self, security_table,
                                                    small_keypair):
        """In SkNN_m every payload is ciphertexts (no plaintext index lists)."""
        cloud, client = deploy(security_table, small_keypair, seed=310)
        protocol = SkNNSecure(cloud, distance_bits=7)
        protocol.run(client.encrypt_query([2, 5]), 2)

        def contains_plain_int(payload) -> bool:
            if isinstance(payload, Ciphertext):
                return False
            if isinstance(payload, int):
                return True
            if isinstance(payload, (list, tuple)):
                return any(contains_plain_int(item) for item in payload)
            return False

        for message in cloud.channel.transcript:
            payload = message.payload
            if message.tag == "SkNN.masked_results":
                # The delivery message is [delivery_id, records]: the id is a
                # query-independent sequence number (routing metadata so C2
                # can file the share for the right query), not data.  The
                # record contents must still be ciphertexts only.
                delivery_id, payload = payload
                assert isinstance(delivery_id, int)
            assert not contains_plain_int(payload)

    def test_c2_minimum_localisation_values_look_random(self, security_table,
                                                        small_keypair):
        """The randomized differences C2 decrypts are 0 or indistinguishable
        from random — in particular they never equal a true distance."""
        cloud, client = deploy(security_table, small_keypair, seed=311)
        protocol = SkNNSecure(cloud, distance_bits=7)
        query = [1, 1]
        true_distances = {
            security_table.squared_distance(record.record_id, query)
            for record in security_table
        }
        protocol.run(client.encrypt_query(query), 1)
        beta_messages = [
            message for message in cloud.channel.transcript
            if message.tag == "SkNNm.randomized_differences"
        ]
        assert beta_messages
        for message in beta_messages:
            values = [small_keypair.private_key.decrypt_raw_residue(c)
                      for c in message.payload]
            nonzero = [value for value in values if value != 0]
            # Every non-zero value is a random multiple of a difference and
            # (with overwhelming probability) not a true distance.
            assert all(value not in true_distances for value in nonzero)
            # Exactly the minimum positions decrypt to zero.
            assert 1 <= (len(values) - len(nonzero)) <= len(values)

    def test_indicator_vector_is_encrypted_and_hides_position(self, security_table,
                                                              small_keypair):
        """C1 receives U as ciphertexts; without sk it cannot locate the 1."""
        cloud, client = deploy(security_table, small_keypair, seed=312)
        protocol = SkNNSecure(cloud, distance_bits=7)
        protocol.run(client.encrypt_query([6, 2]), 1)
        indicator_messages = [
            message for message in cloud.channel.transcript
            if message.tag == "SkNNm.indicator"
        ]
        assert indicator_messages
        payload = indicator_messages[0].payload
        assert all(isinstance(item, Ciphertext) for item in payload)
        decrypted = [small_keypair.private_key.decrypt(item) for item in payload]
        assert sorted(decrypted, reverse=True)[0] == 1
        assert sum(decrypted) == 1

    def test_transcripts_differ_across_identical_queries(self, security_table,
                                                         small_keypair):
        """Semantic security: rerunning the same query yields fresh ciphertexts."""
        cloud, client = deploy(security_table, small_keypair, seed=313)
        protocol = SkNNSecure(cloud, distance_bits=7)
        query = client.encrypt_query([3, 3])
        protocol.run(query, 1)
        first_transcript = [
            item.value
            for message in cloud.channel.transcript
            if message.tag == "SkNNm.randomized_differences"
            for item in message.payload
        ]
        cloud.channel.transcript.clear()
        protocol.run(query, 1)
        second_transcript = [
            item.value
            for message in cloud.channel.transcript
            if message.tag == "SkNNm.randomized_differences"
            for item in message.payload
        ]
        assert first_transcript != second_transcript


class TestResultShareSecrecy:
    def test_individual_shares_are_masked(self, security_table, small_keypair):
        """Neither C1's masks nor C2's masked values alone reveal a record."""
        cloud, client = deploy(security_table, small_keypair, seed=320)
        protocol = SkNNBasic(cloud)
        query = [0, 0]
        shares = protocol.run(client.encrypt_query(query), 1)
        true_record = LinearScanKNN(security_table).query(query, 1)[0].record.values
        # The masked values C2 forwards are not the plaintext attributes.
        assert tuple(shares.masked_values_from_c2[0]) != true_record
        # The masks C1 sends Bob are not the plaintext attributes either.
        assert tuple(shares.masks_from_c1[0]) != true_record
        # Only the combination recovers the record.
        assert client.reconstruct(shares)[0] == true_record

    def test_modulus_travels_with_shares(self, security_table, small_keypair):
        cloud, client = deploy(security_table, small_keypair, seed=321)
        protocol = SkNNBasic(cloud)
        shares = protocol.run(client.encrypt_query([1, 1]), 1)
        assert shares.modulus == small_keypair.public_key.n
        assert shares.neighbor_count == 1
