"""Durable daemon state across real process crashes.

The headline recovery story of the durability layer, end to end over real
daemon processes:

* **C2 SIGKILL with a pending delivery** — a secure query is answered by
  C1 and C2 files its decrypted share, then C2 is SIGKILLed *before* Bob
  fetches.  After a supervisor restart the original ``fetch_share``
  attempt token must return the bit-identical share with **zero** query
  re-execution: the share was journaled before it became fetchable, the
  restarted C2 replays the journal, and C1's query counter never moves.
* **Manifest recovery** — the restarted C2 self-provisions from its
  durable manifest and serves fetch/replay traffic before any client
  re-ships the key material.
* **Worker death mid-scatter** — a ``PersistentWorkerPool`` worker
  SIGKILLs itself while computing SSED chunks; the pool respawns and
  resubmits exactly the lost chunk tasks, and the top-k answer is
  bit-identical to the serial oracle.  With retries disabled the same
  crash surfaces as a typed, retriable :class:`ServiceUnavailable`.
"""

from __future__ import annotations

import os
from random import Random

import pytest

from repro.core.cloud import FederatedCloud
from repro.core.parallel import PersistentWorkerPool
from repro.core.roles import DataOwner, QueryClient, ResultShares
from repro.db.datasets import synthetic_uniform
from repro.db.encrypted_table import EncryptedTable
from repro.db.knn import LinearScanKNN
from repro.exceptions import ServiceUnavailable
from repro.resilience import RetryPolicy
from repro.service.sharding import ShardedCloud
from repro.telemetry import metrics as telemetry_metrics
from repro.transport.supervisor import LocalSupervisor

KEY_BITS = int(os.environ.get("REPRO_DISTRIBUTED_BITS", "256"))

N_RECORDS = 10
DIMENSIONS = 2
DISTANCE_BITS = 7
QUERY = [3, 4]
K = 2

IO_DEADLINE = 5.0
RETRY = RetryPolicy(max_attempts=6, base_delay_seconds=0.05, jitter=0.5)
REQUEST_DEADLINE = 60.0


@pytest.fixture(scope="module")
def dataset():
    return synthetic_uniform(n_records=N_RECORDS, dimensions=DIMENSIONS,
                             distance_bits=DISTANCE_BITS, seed=5)


@pytest.fixture(scope="module")
def owner(dataset):
    return DataOwner(dataset, key_size=KEY_BITS, rng=Random(20140709))


def counter_total(name: str) -> float:
    entry = telemetry_metrics.get_registry().snapshot().get(name)
    return sum(entry["values"].values()) if entry else 0.0


def daemon_counter(remote, role: str, name: str,
                   kind: str | None = None) -> float:
    """Sum one counter family from a daemon's metrics snapshot."""
    snapshot = remote.metrics()[role]["snapshot"]
    entry = snapshot.get(name)
    if not entry:
        return 0.0
    values = entry["values"]
    if kind is None:
        return sum(values.values())
    return sum(value for key, value in values.items()
               if kind in key.split(","))


class TestDurableDaemonState:
    def test_c2_sigkill_with_pending_delivery_replays_the_share(self, owner,
                                                                dataset):
        """SIGKILL C2 between share delivery and Bob's fetch; the restarted
        daemon must serve the original attempt token from its journal."""
        oracle = LinearScanKNN(dataset)
        expected = [r.record.values for r in oracle.query(QUERY, K)]

        with LocalSupervisor(io_deadline=IO_DEADLINE, state_dir=True) as sup:
            remote = sup.provision_from_owner(
                owner, seed=11, retry=RETRY,
                request_deadline=REQUEST_DEADLINE, rng=Random(71))
            client = QueryClient(owner.public_key, dataset.dimensions,
                                 rng=Random(32))

            # Run the query through C1 but do NOT fetch C2's share yet:
            # the decrypted half now sits in C2's (durable) mailbox.
            query_id = "dq-recover-1"
            reply = remote.c1.request("transport.query", {
                "mode": "secure", "k": K,
                "query": list(client.encrypt_query(QUERY)),
                "query_id": query_id,
            })
            queries_before = daemon_counter(remote, "c1",
                                            "repro_queries_total")
            assert queries_before >= 1

            sup.kill("c2")
            sup.restart_role("c2")

            # The original attempt token, against the restarted C2.  The
            # client socket died with the old process; the retry policy
            # covers the reconnect.
            payload = {"delivery_id": reply["delivery_id"], "timeout": 5.0,
                       "attempt": query_id}
            masked = remote.c2.request("transport.fetch_share", payload,
                                       retry=RETRY)
            # ...and the replay of that same token is bit-identical.
            assert remote.c2.request("transport.fetch_share", payload,
                                     retry=RETRY) == masked

            shares = ResultShares(masks_from_c1=reply["masks"],
                                  masked_values_from_c2=masked,
                                  modulus=reply["modulus"],
                                  delivery_id=reply["delivery_id"])
            assert client.reconstruct(shares) == expected

            # Proof of *recovery*, not re-execution: the restarted C2
            # replayed journaled deliveries, and C1 never re-ran the query.
            assert daemon_counter(remote, "c2",
                                  "repro_recovered_deliveries_total",
                                  kind="share") >= 1
            assert daemon_counter(remote, "c1",
                                  "repro_queries_total") == queries_before

    def test_restarted_c2_self_provisions_from_its_manifest(self, owner,
                                                            dataset):
        """After the restart, C2 reports provisioned *without* any client
        having re-shipped the key — the durable manifest did it."""
        with LocalSupervisor(io_deadline=IO_DEADLINE, state_dir=True) as sup:
            remote = sup.provision_from_owner(
                owner, seed=13, retry=RETRY,
                request_deadline=REQUEST_DEADLINE, rng=Random(73))
            sup.kill("c2")
            sup.restart_role("c2")

            stats = remote.c2.request("transport.stats", None, retry=RETRY)
            assert stats["provisioned"] is True
            assert stats["durability"]["manifest"] is True

            # Normal service continues end to end on the recovered state.
            client = QueryClient(owner.public_key, dataset.dimensions,
                                 rng=Random(33))
            shares, _ = remote.query(client.encrypt_query(QUERY), K,
                                     mode="secure")
            oracle = LinearScanKNN(dataset)
            expected = [r.record.values for r in oracle.query(QUERY, K)]
            assert client.reconstruct(shares) == expected


@pytest.fixture(scope="module")
def shard_table():
    return synthetic_uniform(n_records=18, dimensions=3, distance_bits=9,
                             seed=55)


def _deploy(keypair, table, seed):
    cloud = FederatedCloud.deploy(keypair, rng=Random(seed))
    cloud.c1.host_database(
        EncryptedTable.encrypt_table(table, keypair.public_key,
                                     rng=Random(seed + 1)))
    return cloud


class TestWorkerDeathMidScatter:
    def test_killed_worker_is_respawned_and_topk_is_bit_identical(
            self, small_keypair, shard_table, tmp_path, monkeypatch):
        """One worker SIGKILLs itself on its first chunk task (breaking the
        whole pool); the retry round must reproduce the serial answer."""
        sentinel = tmp_path / "kill-one-worker"
        sentinel.touch()
        # CRITICAL ordering: the env var must be set before the pool's
        # first map — the executor forks lazily at first submit and the
        # children inherit the environment then.
        monkeypatch.setenv("REPRO_CHAOS_WORKER_KILL", str(sentinel))

        oracle = LinearScanKNN(shard_table)
        query, k = [4, 4, 4], 3
        retries_before = counter_total("repro_chunk_retries_total")

        cloud = _deploy(small_keypair, shard_table, 300)
        client = QueryClient(small_keypair.public_key, shard_table.dimensions,
                             rng=Random(9))
        with ShardedCloud(cloud, shards=2, workers=2,
                          backend="process") as sharded:
            shares = sharded.run(client.encrypt_query(query), k)
            neighbors = client.reconstruct(shares)

            assert neighbors == [r.record.values
                                 for r in oracle.query(query, k)]
            assert sharded.pool.respawns >= 1
            assert not sentinel.exists()  # the kill switch actually fired
        assert counter_total("repro_chunk_retries_total") > retries_before

    def test_exhausted_retries_surface_as_service_unavailable(
            self, small_keypair, shard_table, tmp_path, monkeypatch):
        """With chunk retries disabled the same worker crash becomes a
        typed, retriable failure instead of silent data loss."""
        sentinel = tmp_path / "kill-no-retry"
        sentinel.touch()
        monkeypatch.setenv("REPRO_CHAOS_WORKER_KILL", str(sentinel))

        cloud = _deploy(small_keypair, shard_table, 301)
        client = QueryClient(small_keypair.public_key, shard_table.dimensions,
                             rng=Random(10))
        pool = PersistentWorkerPool(workers=2, backend="process",
                                    task_retries=0)
        try:
            with ShardedCloud(cloud, shards=2, pool=pool) as sharded:
                with pytest.raises(ServiceUnavailable) as excinfo:
                    sharded.run(client.encrypt_query([7, 0, 2]), 1)
            assert excinfo.value.retry_after_seconds is not None
        finally:
            pool.close()
