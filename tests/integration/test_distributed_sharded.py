"""Cross-machine sharding: shard C1 daemons + coordinator + one shared C2.

The acceptance bar for "shards = machines": a sharded SkNN_b query executed
across real shard-daemon subprocesses must return **bit-identical** results
to both the serial in-memory stack and the in-process ``ShardedCloud``,
under sequential and concurrent load, and a killed shard daemon must fail
only the affected queries with typed retriable errors, then recover after a
supervised restart.

CI runs this at 256-bit keys (``REPRO_DISTRIBUTED_BITS`` overrides).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from random import Random

import pytest

from repro.core.roles import DataOwner, QueryClient
from repro.db.datasets import synthetic_uniform
from repro.db.knn import LinearScanKNN
from repro.exceptions import (
    ChannelError,
    ConfigurationError,
    DeadlineExceeded,
    PeerUnavailable,
)
from repro.resilience.policy import RetryPolicy
from repro.transport.supervisor import LocalSupervisor

KEY_BITS = int(os.environ.get("REPRO_DISTRIBUTED_BITS", "256"))

N_RECORDS = 11  # deliberately odd: divmod gives the shards unequal slices
DIMENSIONS = 2
DISTANCE_BITS = 7
SHARDS = 2
QUERIES = ([3, 4], [6, 1], [1, 7])
K = 2


@pytest.fixture(scope="module")
def dataset():
    return synthetic_uniform(n_records=N_RECORDS, dimensions=DIMENSIONS,
                             distance_bits=DISTANCE_BITS, seed=9)


@pytest.fixture(scope="module")
def owner(dataset):
    return DataOwner(dataset, key_size=KEY_BITS, rng=Random(20140710))


@pytest.fixture(scope="module")
def supervisor():
    """2 shard daemons + coordinator C1 + C2, pooled peer connections."""
    with LocalSupervisor(shards=SHARDS, peer_connections=2,
                         io_deadline=60.0) as sup:
        yield sup


@pytest.fixture(scope="module")
def remote(supervisor, owner):
    return supervisor.provision_from_owner(owner, seed=11)


@pytest.fixture(scope="module")
def client(owner, dataset):
    return QueryClient(owner.public_key, dataset.dimensions, rng=Random(21))


def serial_answers(owner, dataset):
    """Reference answers from the in-memory serial SkNN_b stack."""
    from repro.core.cloud import FederatedCloud
    from repro.core.sknn_basic import SkNNBasic

    cloud = FederatedCloud.deploy(owner.keypair, rng=Random(31))
    cloud.c1.host_database(owner.encrypt_database())
    reference_client = QueryClient(owner.public_key, dataset.dimensions,
                                   rng=Random(32))
    protocol = SkNNBasic(cloud)
    return [reference_client.reconstruct(
        protocol.run(reference_client.encrypt_query(query), K))
        for query in QUERIES]


class TestShardedBitIdentity:
    def test_sharded_daemons_match_serial_and_oracle(self, owner, dataset,
                                                     remote, client):
        oracle = LinearScanKNN(dataset)
        for query, expected in zip(QUERIES, serial_answers(owner, dataset)):
            shares, report = remote.query(client.encrypt_query(query), K,
                                          mode="basic")
            neighbors = client.reconstruct(shares)
            assert neighbors == expected, (
                "sharded daemons diverged from the serial stack")
            assert neighbors == [r.record.values
                                 for r in oracle.query(query, K)]
            assert report is not None

    def test_concurrent_sharded_queries_stay_bit_identical(
            self, owner, dataset, remote, client):
        expected = serial_answers(owner, dataset)
        jobs = [(index, client.encrypt_query(query))
                for index, query in enumerate(QUERIES) for _ in range(2)]
        clones = [remote.clone() for _ in jobs]

        def run(slot):
            index, encrypted = jobs[slot]
            shares, _ = clones[slot].query(encrypted, K, mode="basic")
            return index, client.reconstruct(shares)

        try:
            with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
                results = list(pool.map(run, range(len(jobs))))
        finally:
            for clone in clones:
                clone.close()
        for index, neighbors in results:
            assert neighbors == expected[index]

    def test_sharded_mode_rejects_secure_queries(self, remote, client):
        """SkNN_m's SMIN_n tournament cannot shard; the coordinator says so
        with a typed non-retriable error instead of wrong answers."""
        with pytest.raises(ConfigurationError):
            remote.query(client.encrypt_query(list(QUERIES[0])), K,
                         mode="secure")


class TestShardedObservability:
    def test_stats_expose_shard_topology(self, remote):
        stats = remote.stats()
        coordinator = stats["c1"]
        assert len(coordinator["shards"]) == SHARDS
        shard_payloads = stats["shards"]
        starts = []
        for index, payload in enumerate(shard_payloads):
            shard = payload["shard"]
            assert shard["index"] == index
            assert shard["count"] == SHARDS
            starts.append(shard["start_index"])
        # divmod-contiguous slices: 11 records over 2 shards -> 6 + 5.
        assert starts == [0, 6]

    def test_cost_rows_attribute_each_shard(self, remote, client):
        _, report = remote.query(client.encrypt_query(list(QUERIES[0])), K,
                                 mode="basic")
        parties = {row["party"] for row in report.cost_breakdown}
        assert {"C1", "C2"} <= parties
        assert {f"C1-shard{index}" for index in range(SHARDS)} <= parties
        # The stitched scan covered every record exactly once.
        scanned = report.stats.extra.get("shard_records_scanned")
        assert scanned == N_RECORDS


class TestShardFailureDomain:
    def test_killed_shard_fails_typed_then_recovers(self, supervisor, owner,
                                                    dataset, client):
        """A dead shard daemon fails the query with a typed retriable
        error; a supervised restart + re-provision restores bit-identical
        answers (reply-cached scans make the retry safe)."""
        remote = supervisor.connect(retry=RetryPolicy.none(),
                                    request_deadline=60.0)
        try:
            remote.provision(
                owner.keypair, owner.encrypt_database(),
                distance_bits=owner.distance_bit_length(), seed=13)
            expected = serial_answers(owner, dataset)

            supervisor.kill("c1-shard1")
            with pytest.raises((PeerUnavailable, DeadlineExceeded,
                                ChannelError)):
                remote.query(client.encrypt_query(list(QUERIES[0])), K,
                             mode="basic")

            supervisor.restart_role("c1-shard1")
            for attempt in range(3):
                # Client sockets opened before the kill heal lazily: a
                # failed request drops them, the next one re-dials.  With
                # retries disabled that takes one explicit extra pass.
                try:
                    remote.ensure_provisioned()
                    break
                except (PeerUnavailable, ChannelError):
                    if attempt == 2:
                        raise
            shares, _ = remote.query(client.encrypt_query(list(QUERIES[0])),
                                     K, mode="basic")
            assert client.reconstruct(shares) == expected[0]
        finally:
            remote.close()
