"""Integration test reproducing the paper's running example (Example 1).

The physician Bob queries the encrypted heart-disease table with the patient
record ``Q = <58, 1, 4, 133, 196, 1, 2, 1, 6>``; for ``k = 2`` the protocol
must return records ``t4`` and ``t5`` — and only Bob may learn them.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.core.system import SkNNSystem
from repro.db.datasets import heart_disease_example_query, heart_disease_table
from repro.db.knn import LinearScanKNN


@pytest.fixture(scope="module")
def example_table():
    return heart_disease_table(include_diagnosis=False)


@pytest.fixture(scope="module")
def example_query():
    return heart_disease_example_query()


@pytest.fixture(scope="module")
def expected_neighbors(example_table, example_query):
    oracle = LinearScanKNN(example_table)
    return [result.record.values for result in oracle.query(example_query, 2)]


class TestPaperExample1:
    def test_plaintext_oracle_returns_t4_and_t5(self, example_table, example_query):
        oracle = LinearScanKNN(example_table)
        ids = {result.record_id for result in oracle.query(example_query, 2)}
        assert ids == {"t4", "t5"}

    def test_basic_protocol_reproduces_example(self, example_table, example_query,
                                               expected_neighbors):
        system = SkNNSystem.setup(example_table, key_size=256, mode="basic",
                                  rng=Random(101))
        assert system.query(example_query, k=2) == expected_neighbors

    def test_secure_protocol_reproduces_example(self, example_table, example_query,
                                                expected_neighbors):
        system = SkNNSystem.setup(example_table, key_size=256, mode="secure",
                                  rng=Random(102))
        assert system.query(example_query, k=2) == expected_neighbors

    def test_returned_records_carry_all_attributes(self, example_table,
                                                   example_query):
        system = SkNNSystem.setup(example_table, key_size=256, mode="basic",
                                  rng=Random(103))
        neighbors = system.query(example_query, k=2)
        assert all(len(record) == example_table.dimensions for record in neighbors)
        # t5 = (55, 0, 4, 128, 205, 0, 2, 1, 7) is the closest record.
        assert neighbors[0] == (55, 0, 4, 128, 205, 0, 2, 1, 7)
        assert neighbors[1] == (59, 1, 4, 144, 200, 1, 2, 2, 6)
