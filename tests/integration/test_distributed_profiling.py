"""Distributed profiling: cost attribution across two real daemon processes.

The distributed acceptance bar for the cost ledger: on a query executed
across C1/C2 daemon subprocesses, the C1-attributed phase rows must sum to
the query wall time (within 1%), the stitched C2 rows must carry the exact
operation counts the run stats report for C2, and a live scrape of C1's
``/profile`` endpoint during a query must capture a protocol frame.

CI runs this at 256-bit keys (``REPRO_DISTRIBUTED_BITS`` overrides).
"""

from __future__ import annotations

import os
import threading
import urllib.request
from random import Random

import pytest

from repro.core.roles import DataOwner, QueryClient
from repro.db.datasets import synthetic_uniform
from repro.transport.supervisor import LocalSupervisor

KEY_BITS = int(os.environ.get("REPRO_DISTRIBUTED_BITS", "256"))

N_RECORDS = 10
DIMENSIONS = 2
DISTANCE_BITS = 7
K = 2


@pytest.fixture(scope="module")
def dataset():
    return synthetic_uniform(n_records=N_RECORDS, dimensions=DIMENSIONS,
                             distance_bits=DISTANCE_BITS, seed=5)


@pytest.fixture(scope="module")
def owner(dataset):
    return DataOwner(dataset, key_size=KEY_BITS, rng=Random(20140709))


@pytest.fixture(scope="module")
def supervisor():
    """Daemons with both the metrics listener and the profiler armed."""
    with LocalSupervisor(metrics=True, profile=True) as sup:
        yield sup


@pytest.fixture(scope="module")
def remote(supervisor, owner):
    return supervisor.provision_from_owner(owner, seed=11)


@pytest.fixture(scope="module")
def client(owner, dataset):
    return QueryClient(owner.public_key, dataset.dimensions, rng=Random(18))


def run_query(remote, client, mode="secure"):
    shares, report = remote.query(client.encrypt_query([3, 4]), K, mode=mode)
    assert len(client.reconstruct(shares)) == K
    assert report is not None
    return report


class TestDistributedCostAttribution:
    def test_c1_rows_sum_to_wall_time(self, remote, client):
        report = run_query(remote, client)
        rows = report.cost_breakdown
        assert rows, "distributed report carries no cost rows"
        # In distributed mode only C1's rows partition the wall clock —
        # C2's busy time overlaps C1's protocol-round wait time.
        c1_seconds = sum(row["seconds"] for row in rows
                        if row["party"] == "C1")
        assert c1_seconds == pytest.approx(report.wall_time_seconds,
                                           rel=0.01), (
            f"C1 phase seconds {c1_seconds} vs wall "
            f"{report.wall_time_seconds}")

    def test_c2_rows_match_stitched_stats_exactly(self, remote, client):
        report = run_query(remote, client)
        c2_rows = [row for row in report.cost_breakdown
                   if row["party"] == "C2"]
        assert c2_rows, "no C2-attributed phases in distributed mode"
        assert any(row["seconds"] > 0 for row in c2_rows)

        totals: dict[str, float] = {}
        for row in c2_rows:
            for op, count in row["ops"].items():
                totals[op] = totals.get(op, 0) + count
        stats = report.stats
        assert totals.get("decryptions", 0) == stats.c2_decryptions
        assert totals.get("encryptions", 0) == stats.c2_encryptions
        assert totals.get("exponentiations", 0) == stats.c2_exponentiations

    def test_phases_cover_the_secure_protocol(self, remote, client):
        report = run_query(remote, client)
        c1_phases = {row["phase"] for row in report.cost_breakdown
                     if row["party"] == "C1"}
        assert {"scan", "decompose", "select"} <= c1_phases

    def test_basic_mode_also_attributes(self, remote, client):
        report = run_query(remote, client, mode="basic")
        parties = {row["party"] for row in report.cost_breakdown}
        assert parties == {"C1", "C2"}


class TestLiveProfileEndpoint:
    def test_profile_scrape_during_query_contains_protocol_frame(
            self, remote, client):
        address = remote.stats()["c1"]["metrics_address"]
        outcome: dict = {}

        def query():
            outcome["report"] = run_query(remote, client)

        worker = threading.Thread(target=query)
        worker.start()
        try:
            with urllib.request.urlopen(f"{address}/profile?seconds=2",
                                        timeout=30) as response:
                assert response.status == 200
                collapsed = response.read().decode("utf-8")
        finally:
            worker.join(timeout=120)
        assert "report" in outcome, "query thread did not finish"
        assert collapsed.strip(), "/profile returned no stacks"
        for line in collapsed.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0
        assert any("daemon" in line or "sknn" in line.lower()
                   or "protocol" in line
                   for line in collapsed.splitlines()), (
            "no protocol frame captured during a live query")

    def test_daemon_stats_reports_armed_profiler(self, remote):
        stats = remote.stats()
        for role in ("c1", "c2"):
            profiler = stats[role].get("profiler")
            assert profiler and profiler["running"], (
                f"{role} daemon does not report an armed profiler")
