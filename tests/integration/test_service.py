"""Integration tests for the query-serving subsystem (repro.service)."""

from __future__ import annotations

import threading
from random import Random

import pytest

from repro.core.cloud import FederatedCloud
from repro.core.roles import QueryClient
from repro.core.system import SkNNSystem
from repro.crypto.randomness_pool import RandomnessPool
from repro.db.datasets import synthetic_uniform
from repro.db.encrypted_table import EncryptedTable
from repro.db.knn import LinearScanKNN
from repro.db.schema import Schema
from repro.db.table import Table
from repro.exceptions import ConfigurationError, QueryError
from repro.service.scheduler import QueryServer
from repro.service.sharding import ShardedCloud


@pytest.fixture(scope="module")
def service_table():
    return synthetic_uniform(n_records=18, dimensions=3, distance_bits=9,
                             seed=55)


@pytest.fixture(scope="module")
def service_oracle(service_table):
    return LinearScanKNN(service_table)


def _deploy(keypair, table, seed):
    cloud = FederatedCloud.deploy(keypair, rng=Random(seed))
    cloud.c1.host_database(
        EncryptedTable.encrypt_table(table, keypair.public_key,
                                     rng=Random(seed + 1)))
    return cloud


class TestShardedCloud:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_matches_oracle_across_shard_counts(self, small_keypair,
                                                service_table, service_oracle,
                                                shards):
        cloud = _deploy(small_keypair, service_table, 200 + shards)
        client = QueryClient(small_keypair.public_key,
                             service_table.dimensions, rng=Random(9))
        with ShardedCloud(cloud, shards=shards, workers=2,
                          backend="serial") as sharded:
            for query, k in ([4, 4, 4], 3), ([7, 0, 2], 1), ([1, 8, 5], 5):
                shares = sharded.run(client.encrypt_query(query), k)
                neighbors = client.reconstruct(shares)
                expected = [r.record.values
                            for r in service_oracle.query(query, k)]
                assert neighbors == expected

    def test_distance_ties_across_shards_break_by_insertion_order(
            self, small_keypair):
        # Records 1, 7 and 10 are identical, and with 3 shards of 4 records
        # they land on three different shards; the merged top-k must order
        # them by global record index, exactly like the plaintext oracle.
        duplicate = [5, 5, 5]
        rows = [[0, 0, 9], duplicate, [9, 9, 0], [1, 2, 3],
                [8, 0, 1], [0, 9, 9], [2, 2, 2], duplicate,
                [9, 0, 9], [3, 3, 3], duplicate, [9, 9, 9]]
        table = Table.from_rows(Schema.uniform(3, maximum=9), rows)
        oracle = LinearScanKNN(table)
        cloud = _deploy(small_keypair, table, 300)
        client = QueryClient(small_keypair.public_key, 3, rng=Random(10))
        with ShardedCloud(cloud, shards=3, workers=1,
                          backend="serial") as sharded:
            assert sharded.shard_sizes == [4, 4, 4]
            for k in (2, 3, 4):
                shares = sharded.run(client.encrypt_query(duplicate), k)
                neighbors = client.reconstruct(shares)
                expected = [r.record.values
                            for r in oracle.query(duplicate, k)]
                assert neighbors == expected

    def test_batch_answers_equal_individual_answers(self, small_keypair,
                                                    service_table,
                                                    service_oracle):
        cloud = _deploy(small_keypair, service_table, 400)
        client = QueryClient(small_keypair.public_key,
                             service_table.dimensions, rng=Random(11))
        queries = [[2, 2, 2], [8, 1, 0], [5, 5, 5], [0, 0, 0]]
        ks = [2, 1, 3, 2]
        with ShardedCloud(cloud, shards=2, workers=2,
                          backend="serial") as sharded:
            batch_shares = sharded.answer_batch(
                [client.encrypt_query(q) for q in queries], ks)
            for query, k, shares in zip(queries, ks, batch_shares):
                expected = [r.record.values
                            for r in service_oracle.query(query, k)]
                assert client.reconstruct(shares) == expected
            assert sharded.last_batch_timings is not None
            assert sharded.last_batch_timings.queries == len(queries)

    def test_partition_covers_table_without_overlap(self, small_keypair,
                                                    service_table):
        cloud = _deploy(small_keypair, service_table, 500)
        with ShardedCloud(cloud, shards=4, workers=1,
                          backend="serial") as sharded:
            covered = [index for shard in sharded.shards
                       for index in shard.global_indices()]
            assert covered == list(range(len(service_table)))

    def test_invalid_shard_counts_rejected(self, small_keypair, service_table):
        cloud = _deploy(small_keypair, service_table, 600)
        with pytest.raises(ConfigurationError):
            ShardedCloud(cloud, shards=0)
        with pytest.raises(ConfigurationError):
            ShardedCloud(cloud, shards=len(service_table) + 1)

    def test_run_with_report_populates_phases(self, small_keypair,
                                              service_table):
        cloud = _deploy(small_keypair, service_table, 700)
        client = QueryClient(small_keypair.public_key,
                             service_table.dimensions, rng=Random(12))
        with ShardedCloud(cloud, shards=2, workers=1,
                          backend="serial") as sharded:
            sharded.run_with_report(client.encrypt_query([1, 1, 1]), 2)
            report = sharded.last_report
        assert report is not None
        assert report.protocol == "SkNNb-sharded"
        assert report.n_records == len(service_table)
        assert set(report.phase_seconds) == {"distance", "merge", "deliver"}
        assert report.stats.c2_decryptions > 0


class TestQueryServer:
    def test_eight_concurrent_sessions_get_isolated_correct_answers(
            self, small_keypair, service_table, service_oracle):
        """Acceptance: >= 8 concurrent queries over >= 2 shards, all exact."""
        cloud = _deploy(small_keypair, service_table, 800)
        sharded = ShardedCloud(cloud, shards=2, workers=2, backend="thread")
        server = QueryServer(sharded, batch_size=4, rng=Random(13))
        queries = [[i % 9, (2 * i) % 9, (3 * i) % 9] for i in range(8)]
        results: dict[int, list[tuple[int, ...]]] = {}

        def client_thread(index: int) -> None:
            session = server.open_session(f"bob-{index}")
            answer = session.query(queries[index], 2, timeout=120)
            results[index] = answer.neighbors

        with server:
            threads = [threading.Thread(target=client_thread, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert len(results) == 8
        for index, neighbors in results.items():
            expected = [r.record.values
                        for r in service_oracle.query(queries[index], 2)]
            assert neighbors == expected, f"session {index} got a wrong answer"
        assert server.stats.queries_served == 8

    def test_synchronous_flush_mode_without_background_thread(
            self, small_keypair, service_table, service_oracle):
        cloud = _deploy(small_keypair, service_table, 900)
        sharded = ShardedCloud(cloud, shards=3, workers=1, backend="serial")
        server = QueryServer(sharded, batch_size=3, rng=Random(14))
        session = server.open_session()
        pending = [session.submit([i, i, i], 2) for i in range(5)]
        # result() drives the scheduler itself when no thread is running.
        for i, handle in enumerate(pending):
            expected = [r.record.values
                        for r in service_oracle.query([i, i, i], 2)]
            assert handle.result(timeout=60).neighbors == expected
        assert server.stats.batches_served == 2  # 3 + 2
        server.close()

    def test_batched_answers_carry_populated_reports(self, small_keypair,
                                                     service_table):
        cloud = _deploy(small_keypair, service_table, 1000)
        sharded = ShardedCloud(cloud, shards=2, workers=1, backend="serial")
        server = QueryServer(sharded, batch_size=4, rng=Random(15))
        session = server.open_session("bob")
        pending = [session.submit([1, 2, 3], 2), session.submit([4, 5, 6], 1)]
        server.flush()
        for handle in pending:
            answer = handle.result(timeout=60)
            assert answer.report is not None
            assert answer.report.protocol == "SkNNb-sharded"
            assert {"encrypt", "queue_wait", "distance", "merge", "deliver",
                    "reconstruct"} <= set(answer.report.phase_seconds)
            assert answer.client_encrypt_seconds > 0
        server.close()

    def test_randomness_pools_keep_answers_exact(self, small_keypair,
                                                 service_table,
                                                 service_oracle):
        cloud = _deploy(small_keypair, service_table, 1100)
        pool = RandomnessPool(small_keypair.public_key, size=64,
                              rng=Random(16))
        sharded = ShardedCloud(cloud, shards=2, workers=1, backend="serial",
                               randomness_pool=pool)
        server = QueryServer(sharded, batch_size=4, rng=Random(17),
                             session_pool_size=12)
        session = server.open_session("bob")
        answer = session.query([3, 6, 1], 3, timeout=60)
        expected = [r.record.values for r in service_oracle.query([3, 6, 1], 3)]
        assert answer.neighbors == expected
        assert pool.hits > 0  # delivery masking drew from the pool
        server.close()

    def test_precompute_engine_keeps_answers_exact_and_refills(
            self, small_keypair, service_table, service_oracle):
        """Warm engine: delivery masks and worker slices come from pools,
        answers stay oracle-exact, and idle refills restore the targets."""
        from repro.crypto.precompute import PrecomputeConfig, PrecomputeEngine

        cloud = _deploy(small_keypair, service_table, 1150)
        engine = PrecomputeEngine(
            small_keypair.public_key, rng=Random(18),
            config=PrecomputeConfig.for_query_load(
                len(service_table), service_table.dimensions, k=3, queries=2))
        engine.warm()
        sharded = ShardedCloud(cloud, shards=2, workers=1, backend="serial",
                               precompute=engine)
        try:
            sharded.refill_precompute()
            assert all(pool.remaining > 0 for pool in sharded.shard_pools)
            server = QueryServer(sharded, batch_size=4, rng=Random(19))
            session = server.open_session("bob")
            answer = session.query([3, 6, 1], 3, timeout=60)
            expected = [r.record.values
                        for r in service_oracle.query([3, 6, 1], 3)]
            assert answer.neighbors == expected
            # The query drained pooled material...
            assert engine.pool_hit_total() > 0
            shard_hits = sum(pool.hits for pool in sharded.shard_pools)
            assert shard_hits > 0
            # ...and an off-path refill tops everything back up.
            assert sharded.refill_precompute() > 0
            assert not engine.deficits()
            server.close()
        finally:
            cloud.attach_engine(None)

    def test_duplicate_session_names_rejected(self, small_keypair,
                                              service_table):
        cloud = _deploy(small_keypair, service_table, 1200)
        server = QueryServer(
            ShardedCloud(cloud, shards=2, workers=1, backend="serial"),
            rng=Random(18))
        server.open_session("bob")
        with pytest.raises(ConfigurationError):
            server.open_session("bob")
        server.close()

    def test_invalid_query_rejected_at_submission(self, small_keypair,
                                                  service_table):
        cloud = _deploy(small_keypair, service_table, 1300)
        server = QueryServer(
            ShardedCloud(cloud, shards=2, workers=1, backend="serial"),
            rng=Random(19))
        session = server.open_session("bob")
        with pytest.raises(QueryError):
            session.submit([1, 1, 1], len(service_table) + 1)
        # Nothing was enqueued, so no batch can be poisoned by the bad query.
        assert server.scheduler.pending == 0
        server.close()

    def test_running_server_survives_a_bad_query(self, small_keypair,
                                                 service_table,
                                                 service_oracle):
        cloud = _deploy(small_keypair, service_table, 1400)
        server = QueryServer(
            ShardedCloud(cloud, shards=2, workers=1, backend="serial"),
            batch_size=2, rng=Random(26))
        with server:
            session = server.open_session("bob")
            with pytest.raises(QueryError):
                session.query([9, 9], 2, timeout=60)  # wrong arity
            # The serving thread is still alive and answers the next query.
            answer = session.query([4, 4, 4], 2, timeout=60)
            assert server.running
        expected = [r.record.values for r in service_oracle.query([4, 4, 4], 2)]
        assert answer.neighbors == expected


class TestSystemIntegration:
    def test_sharded_mode_end_to_end(self, service_table, service_oracle):
        with SkNNSystem.setup(service_table, key_size=128, mode="sharded",
                              shards=3, workers=2, parallel_backend="serial",
                              rng=Random(20)) as system:
            query = [6, 2, 7]
            expected = [r.record.values for r in service_oracle.query(query, 3)]
            assert system.query(query, 3) == expected
            answer = system.query_with_report(query, 3)
            assert answer.report is not None
            assert answer.report.protocol == "SkNNb-sharded"

    def test_k_default_used_when_k_omitted(self, service_table,
                                           service_oracle):
        with SkNNSystem.setup(service_table, key_size=128, mode="basic",
                              k_default=2, rng=Random(21)) as system:
            query = [5, 1, 4]
            expected = [r.record.values for r in service_oracle.query(query, 2)]
            assert system.query(query) == expected
            # An explicit k still wins over the default.
            assert len(system.query(query, 4)) == 4

    def test_missing_k_without_default_rejected(self, service_table):
        with SkNNSystem.setup(service_table, key_size=128, mode="basic",
                              rng=Random(22)) as system:
            with pytest.raises(QueryError):
                system.query([1, 1, 1])

    def test_serve_entry_point_round_trip(self, service_table,
                                          service_oracle):
        system = SkNNSystem.setup(service_table, key_size=128, mode="basic",
                                  rng=Random(23))
        server = system.serve(shards=2, workers=1, backend="serial",
                              batch_size=2, randomness_pool_size=16)
        with server:
            session = server.open_session("bob")
            answer = session.query([2, 7, 3], 2, timeout=120)
        expected = [r.record.values for r in service_oracle.query([2, 7, 3], 2)]
        assert answer.neighbors == expected
        system.close()
