"""Randomized cross-validation: secure protocols vs. the plaintext oracle.

Beyond the hand-picked cases elsewhere in the suite, these tests sweep several
random tables and queries and require the secure protocols (and every
baseline) to return exactly the plaintext answer — the paper's correctness
requirement in its strongest form.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.baselines.aspe import ASPESystem
from repro.baselines.plaintext import PlaintextKNNSystem
from repro.core.system import SkNNSystem
from repro.db.datasets import synthetic_clustered, synthetic_uniform
from repro.db.knn import LinearScanKNN


def oracle_answer(table, query, k):
    return [r.record.values for r in LinearScanKNN(table).query(query, k)]


def assert_valid_knn_answer(table, query, k, neighbors):
    """Check a kNN answer allowing arbitrary resolution of distance ties.

    The paper does not prescribe a tie-breaking rule; SkNN_m resolves ties by
    a random choice inside C2 while the plaintext oracle uses record order.
    An answer is therefore correct when (a) it has exactly ``k`` records, (b)
    every returned record occurs in the table, and (c) the multiset of
    distances equals the oracle's multiset of the k smallest distances.
    """
    from repro.db.knn import squared_euclidean

    assert len(neighbors) == k
    table_rows = list(table.row_values())
    for record in neighbors:
        assert tuple(record) in table_rows
    returned_distances = sorted(squared_euclidean(record, query)
                                for record in neighbors)
    expected_distances = sorted(squared_euclidean(record, query)
                                for record in oracle_answer(table, query, k))
    assert returned_distances == expected_distances


class TestBasicProtocolSweep:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_uniform_tables(self, seed):
        table = synthetic_uniform(n_records=20, dimensions=4, distance_bits=10,
                                  seed=seed)
        system = SkNNSystem.setup(table, key_size=128, mode="basic",
                                  rng=Random(seed + 100))
        rng = Random(seed + 200)
        for _ in range(3):
            query = [rng.randrange(0, 10) for _ in range(4)]
            k = rng.choice([1, 3, 5])
            assert system.query(query, k) == oracle_answer(table, query, k)

    def test_clustered_table(self):
        table = synthetic_clustered(n_records=25, dimensions=3, distance_bits=12,
                                    clusters=3, seed=9)
        system = SkNNSystem.setup(table, key_size=128, mode="basic",
                                  rng=Random(900))
        query = [5, 5, 5]
        assert system.query(query, 4) == oracle_answer(table, query, 4)


class TestSecureProtocolSweep:
    @pytest.mark.parametrize("seed", [4, 5])
    def test_random_uniform_tables(self, seed):
        table = synthetic_uniform(n_records=8, dimensions=2, distance_bits=7,
                                  seed=seed)
        system = SkNNSystem.setup(table, key_size=128, mode="secure",
                                  rng=Random(seed + 300))
        rng = Random(seed + 400)
        query = [rng.randrange(0, 8) for _ in range(2)]
        k = rng.choice([1, 2])
        assert_valid_knn_answer(table, query, k, system.query(query, k))

    def test_secure_and_basic_agree(self):
        table = synthetic_uniform(n_records=9, dimensions=2, distance_bits=7,
                                  seed=11)
        query = [3, 4]
        basic = SkNNSystem.setup(table, key_size=128, mode="basic",
                                 rng=Random(501))
        secure = SkNNSystem.setup(table, key_size=128, mode="secure",
                                  rng=Random(502))
        # The distances of the returned records must agree even when ties are
        # resolved differently by the two protocols.
        assert_valid_knn_answer(table, query, 3, basic.query(query, 3))
        assert_valid_knn_answer(table, query, 3, secure.query(query, 3))


class TestBaselineAgreement:
    def test_all_engines_agree_on_one_workload(self):
        table = synthetic_uniform(n_records=30, dimensions=3, distance_bits=12,
                                  seed=13)
        query = [7, 7, 7]
        k = 5
        expected = oracle_answer(table, query, k)
        assert PlaintextKNNSystem(table, engine="linear").query(query, k) == expected
        assert PlaintextKNNSystem(table, engine="kdtree").query(query, k) == expected
        assert ASPESystem(table, seed=77).query(query, k) == expected
        system = SkNNSystem.setup(table, key_size=128, mode="basic",
                                  rng=Random(600))
        assert system.query(query, k) == expected
