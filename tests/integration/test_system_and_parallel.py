"""Integration tests for the end-to-end SkNNSystem and the parallel variant."""

from __future__ import annotations

from random import Random

import pytest

from repro.core.parallel import ParallelSkNNBasic
from repro.core.system import SkNNSystem
from repro.db.datasets import synthetic_uniform
from repro.db.knn import LinearScanKNN
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def system_table():
    return synthetic_uniform(n_records=15, dimensions=3, distance_bits=9, seed=33)


@pytest.fixture(scope="module")
def system_oracle(system_table):
    return LinearScanKNN(system_table)


class TestSkNNSystem:
    def test_basic_mode_end_to_end(self, system_table, system_oracle):
        system = SkNNSystem.setup(system_table, key_size=128, mode="basic",
                                  rng=Random(1))
        query = [4, 4, 4]
        expected = [r.record.values for r in system_oracle.query(query, 3)]
        assert system.query(query, 3) == expected

    def test_secure_mode_end_to_end(self, system_table, system_oracle):
        system = SkNNSystem.setup(system_table, key_size=128, mode="secure",
                                  rng=Random(2))
        query = [7, 1, 2]
        expected = [r.record.values for r in system_oracle.query(query, 2)]
        assert system.query(query, 2) == expected

    def test_query_with_report_populates_statistics(self, system_table):
        system = SkNNSystem.setup(system_table, key_size=128, mode="basic",
                                  rng=Random(3))
        answer = system.query_with_report([1, 1, 1], 2)
        assert len(answer.neighbors) == 2
        assert answer.report is not None
        assert answer.report.n_records == len(system_table)
        assert answer.client_encrypt_seconds > 0
        assert answer.client_reconstruct_seconds >= 0

    def test_client_cost_is_tiny_compared_to_cloud_cost(self, system_table):
        """The paper's point: Bob's cost is negligible next to the clouds'."""
        system = SkNNSystem.setup(system_table, key_size=128, mode="secure",
                                  rng=Random(4))
        answer = system.query_with_report([2, 2, 2], 1)
        client_cost = answer.client_encrypt_seconds + answer.client_reconstruct_seconds
        assert client_cost < answer.report.wall_time_seconds / 10

    def test_multiple_queries_reuse_deployment(self, system_table, system_oracle):
        system = SkNNSystem.setup(system_table, key_size=128, mode="basic",
                                  rng=Random(5))
        for query in ([0, 0, 0], [9, 9, 9], [3, 6, 1]):
            expected = [r.record.values for r in system_oracle.query(query, 2)]
            assert system.query(query, 2) == expected

    def test_distance_bits_default_derived_from_schema(self, system_table):
        system = SkNNSystem.setup(system_table, key_size=128, mode="secure",
                                  rng=Random(6))
        assert system.distance_bits == system_table.schema.distance_bit_length()

    def test_unknown_mode_rejected(self, system_table):
        with pytest.raises(ConfigurationError):
            SkNNSystem.setup(system_table, key_size=128, mode="bogus",
                             rng=Random(7))

    def test_key_size_exposed(self, system_table):
        system = SkNNSystem.setup(system_table, key_size=128, mode="basic",
                                  rng=Random(8))
        assert system.key_size in (127, 128)

    def test_parallel_report_none_for_serial_modes(self, system_table):
        system = SkNNSystem.setup(system_table, key_size=128, mode="basic",
                                  rng=Random(9))
        system.query([1, 1, 1], 1)
        assert system.parallel_report is None

    def test_parallel_mode_report_is_populated(self, system_table):
        """Unified reporting: parallel answers carry a real report too."""
        with SkNNSystem.setup(system_table, key_size=128, mode="parallel",
                              workers=2, parallel_backend="serial",
                              rng=Random(10)) as system:
            answer = system.query_with_report([2, 5, 1], 2)
        assert answer.report is not None
        assert answer.report.protocol == "SkNNb-parallel"
        assert answer.report.n_records == len(system_table)
        assert set(answer.report.phase_seconds) == {"distance", "selection"}
        assert answer.report.wall_time_seconds > 0


class TestParallelSkNN:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_backends_match_oracle(self, system_table, system_oracle, backend):
        system = SkNNSystem.setup(system_table, key_size=128, mode="parallel",
                                  workers=2, parallel_backend=backend,
                                  rng=Random(20))
        query = [5, 5, 5]
        expected = [r.record.values for r in system_oracle.query(query, 3)]
        assert system.query(query, 3) == expected

    def test_process_backend_matches_oracle(self, system_table, system_oracle):
        system = SkNNSystem.setup(system_table, key_size=128, mode="parallel",
                                  workers=2, parallel_backend="process",
                                  rng=Random(21))
        query = [8, 2, 3]
        expected = [r.record.values for r in system_oracle.query(query, 2)]
        assert system.query(query, 2) == expected

    def test_parallel_report_populated(self, system_table):
        system = SkNNSystem.setup(system_table, key_size=128, mode="parallel",
                                  workers=2, parallel_backend="serial",
                                  rng=Random(22))
        system.query([1, 2, 3], 1)
        report = system.parallel_report
        assert report is not None
        assert report.backend == "serial"
        assert report.n_records == len(system_table)
        assert report.total_seconds > 0

    def test_invalid_configuration_rejected(self, deployed_cloud):
        with pytest.raises(ConfigurationError):
            ParallelSkNNBasic(deployed_cloud, workers=0)
        with pytest.raises(ConfigurationError):
            ParallelSkNNBasic(deployed_cloud, backend="gpu")

    def test_parallel_and_serial_protocols_agree(self, deployed_cloud, tiny_table,
                                                 small_keypair):
        from repro.core.roles import QueryClient
        client = QueryClient(small_keypair.public_key, tiny_table.dimensions,
                             rng=Random(23))
        oracle = LinearScanKNN(tiny_table)
        query = [2, 2, 2]
        parallel = ParallelSkNNBasic(deployed_cloud, workers=2, backend="serial")
        shares = parallel.run(client.encrypt_query(query), 2)
        neighbors = client.reconstruct(shares)
        assert neighbors == [r.record.values for r in oracle.query(query, 2)]

    def test_worker_pool_is_reused_across_queries(self, deployed_cloud,
                                                  small_keypair, tiny_table):
        """Pool churn fix: repeated queries run on the same executor."""
        from repro.core.roles import QueryClient
        client = QueryClient(small_keypair.public_key, tiny_table.dimensions,
                             rng=Random(24))
        with ParallelSkNNBasic(deployed_cloud, workers=2,
                               backend="thread") as parallel:
            parallel.run(client.encrypt_query([1, 1, 1]), 1)
            first_executor = parallel.pool._executor
            parallel.run(client.encrypt_query([3, 3, 3]), 1)
            assert parallel.pool._executor is first_executor
            assert first_executor is not None
        assert parallel.pool.closed

    def test_closed_pool_rejects_further_queries(self, deployed_cloud,
                                                 small_keypair, tiny_table):
        from repro.core.roles import QueryClient
        client = QueryClient(small_keypair.public_key, tiny_table.dimensions,
                             rng=Random(25))
        parallel = ParallelSkNNBasic(deployed_cloud, workers=2, backend="thread")
        parallel.close()
        with pytest.raises(ConfigurationError):
            parallel.run(client.encrypt_query([1, 1, 1]), 1)

    def test_shared_pool_is_not_closed_by_borrower(self, deployed_cloud):
        from repro.core.parallel import PersistentWorkerPool
        pool = PersistentWorkerPool(workers=2, backend="thread")
        borrower = ParallelSkNNBasic(deployed_cloud, pool=pool)
        borrower.close()
        assert not pool.closed
        pool.close()
        assert pool.closed
