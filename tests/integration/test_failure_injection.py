"""Failure-injection tests: wrong keys, malformed messages, corrupted state.

The semi-honest model assumes parties follow the protocol, but a production
library still has to fail loudly (not silently return wrong answers) when the
deployment itself is broken: a cloud provisioned with the wrong key, a query
encrypted under a stale public key, ciphertext corruption in transit, or a
domain parameter ``l`` too small for the data.  These tests pin down that
behaviour.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.core.cloud import CloudC1, CloudC2, FederatedCloud
from repro.core.roles import DataOwner, QueryClient, ResultShares
from repro.core.sknn_basic import SkNNBasic
from repro.core.sknn_secure import SkNNSecure
from repro.crypto.paillier import Ciphertext, generate_keypair
from repro.db.datasets import synthetic_uniform
from repro.db.encrypted_table import EncryptedTable
from repro.exceptions import (
    ChannelError,
    ConfigurationError,
    KeyMismatchError,
    ProtocolError,
    QueryError,
)
from repro.network.channel import DuplexChannel


@pytest.fixture()
def small_table():
    return synthetic_uniform(n_records=8, dimensions=2, distance_bits=7, seed=55)


def deploy(table, keypair, seed=1000):
    owner = DataOwner(table, keypair=keypair, rng=Random(seed))
    cloud = FederatedCloud.deploy(keypair, rng=Random(seed + 1))
    cloud.c1.host_database(owner.encrypt_database())
    client = QueryClient(keypair.public_key, table.dimensions, rng=Random(seed + 2))
    return cloud, client


class TestWrongKeyMaterial:
    def test_c1_rejects_table_under_foreign_key(self, small_table, small_keypair):
        foreign = generate_keypair(128, Random(123))
        channel = DuplexChannel("C1", "C2")
        c1 = CloudC1(small_keypair.public_key, channel)
        foreign_table = EncryptedTable.encrypt_table(small_table,
                                                     foreign.public_key)
        with pytest.raises(ConfigurationError):
            c1.host_database(foreign_table)

    def test_query_under_foreign_key_fails_loudly(self, small_table, small_keypair):
        """A query encrypted under a stale/foreign key must raise, not mis-answer."""
        cloud, _ = deploy(small_table, small_keypair)
        foreign = generate_keypair(128, Random(321))
        foreign_client = QueryClient(foreign.public_key, small_table.dimensions,
                                     rng=Random(5))
        protocol = SkNNBasic(cloud)
        with pytest.raises(KeyMismatchError):
            protocol.run(foreign_client.encrypt_query([1, 1]), 2)

    def test_cloud_pair_requires_matching_keys(self, small_keypair):
        foreign = generate_keypair(128, Random(77))
        channel = DuplexChannel("C1", "C2")
        c1 = CloudC1(small_keypair.public_key, channel, rng=Random(1))
        c2 = CloudC2(foreign.private_key, channel, rng=Random(2))
        cipher = c1.encrypt(5)
        with pytest.raises(KeyMismatchError):
            c2.decrypt_signed(cipher)


class TestMalformedQueries:
    def test_wrong_arity_rejected_before_any_crypto(self, small_table,
                                                    small_keypair):
        cloud, client = deploy(small_table, small_keypair)
        protocol = SkNNSecure(cloud, distance_bits=7)
        bad_query = [small_keypair.public_key.encrypt(1)] * 5
        with pytest.raises(QueryError):
            protocol.run(bad_query, 1)

    def test_client_validates_arity_at_encryption_time(self, small_table,
                                                       small_keypair):
        _, client = deploy(small_table, small_keypair)
        with pytest.raises(QueryError):
            client.encrypt_query([1, 2, 3])

    def test_k_larger_than_table_rejected(self, small_table, small_keypair):
        cloud, client = deploy(small_table, small_keypair)
        protocol = SkNNSecure(cloud, distance_bits=7)
        with pytest.raises(QueryError):
            protocol.run(client.encrypt_query([1, 1]), len(small_table) + 1)

    def test_querying_before_outsourcing_fails(self, small_keypair):
        cloud = FederatedCloud.deploy(small_keypair, rng=Random(9))
        protocol = SkNNBasic(cloud)
        with pytest.raises(ConfigurationError):
            protocol.run([small_keypair.public_key.encrypt(1)], 1)


class TestDomainViolations:
    def test_distance_domain_too_small_is_detected(self, small_keypair):
        """If l is smaller than the real distances, SkNN_m aborts rather than
        silently returning a wrong neighbor."""
        table = synthetic_uniform(n_records=6, dimensions=2, distance_bits=9,
                                  seed=8)
        cloud, client = deploy(table, small_keypair)
        # Deliberately configure l = 3 although distances go up to ~2**9.
        protocol = SkNNSecure(cloud, distance_bits=3)
        with pytest.raises(ProtocolError):
            protocol.run(client.encrypt_query([0, 0]), 1)

    def test_result_shares_validate_shape(self):
        with pytest.raises(QueryError):
            ResultShares(masks_from_c1=[[1, 2]], masked_values_from_c2=[[1]],
                         modulus=101)
        with pytest.raises(QueryError):
            ResultShares(masks_from_c1=[[1]], masked_values_from_c2=[],
                         modulus=101)


class TestTransportFaults:
    def test_tag_mismatch_detected(self, small_keypair):
        """A message consumed by the wrong protocol step raises immediately."""
        channel = DuplexChannel("C1", "C2")
        channel.send("C1", small_keypair.public_key.encrypt(1), tag="SM.masked_operands")
        with pytest.raises(ChannelError):
            channel.receive("C2", expected_tag="SBD.masked_value")

    def test_corrupted_ciphertext_changes_decryption(self, small_keypair):
        """Bit-flipping a ciphertext in transit yields garbage, not the value."""
        public, private = small_keypair.public_key, small_keypair.private_key
        original = public.encrypt(1234)
        corrupted = Ciphertext(public, original.value ^ (1 << 13))
        assert private.decrypt(corrupted) != 1234

    def test_missing_reply_detected(self, small_keypair):
        channel = DuplexChannel("C1", "C2")
        with pytest.raises(ChannelError):
            channel.receive("C1")
