"""Crash-point injection harness: SIGKILL at every durability boundary.

The unit suite proves atomicity with in-process ``raise``-mode crash
points; this file proves it with *real* crashes: a subprocess arms a
``kill``-mode crash point through the ``REPRO_CRASH_POINT`` environment
variable, performs a snapshot write or journal append, and SIGKILLs itself
at the armed boundary.  The parent then opens the surviving files exactly
the way a restarted daemon would and asserts the state machine's
guarantees:

* **snapshots** — at every boundary (pre-fsync, post-fsync, pre-rename)
  the reader sees the complete *old* document; the new one only ever
  becomes visible atomically, after the rename;
* **journals** — a crash around an append loses at most that one record;
  replay-on-open never raises, and the intact prefix always survives;
* **startup** — recovery from the post-crash state directory never fails
  on corrupted state (the torn-tail repair truncates, the CRC rejects).

Part of the chaos suite (see ``.github/workflows``): run with a daemon
SIGKILL scenario in ``test_durability.py`` and the chaos smoke script.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import CorruptStateError
from repro.resilience.durability import Journal, read_snapshot, write_snapshot

SNAPSHOT_POINTS = ("snapshot.pre_fsync", "snapshot.post_fsync",
                   "snapshot.pre_rename")
JOURNAL_POINTS = ("journal.pre_fsync", "journal.post_fsync")

#: subprocess body: perform one durability operation; the armed kill-mode
#: crash point (from REPRO_CRASH_POINT) SIGKILLs the process mid-way.
_CHILD = """
import sys
from pathlib import Path
from repro.resilience.durability import Journal, write_snapshot

target = Path(sys.argv[1])
operation = sys.argv[2]
if operation == "snapshot":
    write_snapshot(target, "crash-test", {"v": "new"})
else:
    journal = Journal(target, name="crash-test")
    journal.open()
    journal.append({"n": 2})
print("SURVIVED", flush=True)
"""


def run_child(target: Path, operation: str, point: str,
              mode: str = "kill") -> subprocess.CompletedProcess:
    env = dict(os.environ,
               REPRO_CRASH_POINT=f"{point}:{mode}",
               PYTHONPATH=os.pathsep.join(
                   [str(Path(__file__).resolve().parents[2] / "src")]
                   + os.environ.get("PYTHONPATH", "").split(os.pathsep)))
    return subprocess.run(
        [sys.executable, "-c", _CHILD, str(target), operation],
        env=env, capture_output=True, text=True, timeout=60)


class TestSnapshotCrashPoints:
    @pytest.mark.parametrize("point", SNAPSHOT_POINTS)
    def test_sigkill_at_boundary_preserves_the_old_snapshot(self, tmp_path,
                                                            point):
        target = tmp_path / "state.json"
        write_snapshot(target, "crash-test", {"v": "old"})

        result = run_child(target, "snapshot", point)
        assert result.returncode == -signal.SIGKILL, result.stderr
        assert "SURVIVED" not in result.stdout

        # A restarted daemon reads the complete old document — never a torn
        # mix, never a CorruptStateError.
        assert read_snapshot(target, "crash-test") == {"v": "old"}

    def test_without_a_crash_the_new_snapshot_lands_whole(self, tmp_path):
        target = tmp_path / "state.json"
        write_snapshot(target, "crash-test", {"v": "old"})
        result = run_child(target, "snapshot", "unknown.point")
        assert result.returncode == 0, result.stderr
        assert "SURVIVED" in result.stdout
        assert read_snapshot(target, "crash-test") == {"v": "new"}


class TestJournalCrashPoints:
    @pytest.mark.parametrize("point", JOURNAL_POINTS)
    def test_sigkill_around_append_loses_at_most_that_record(self, tmp_path,
                                                             point):
        target = tmp_path / "ops.journal"
        journal = Journal(target, name="crash-test")
        journal.open()
        journal.append({"n": 1})
        journal.close()

        result = run_child(target, "journal", point)
        assert result.returncode == -signal.SIGKILL, result.stderr

        # Startup replay must succeed: the durable prefix is intact, and
        # only the record being appended at the crash may be missing.
        survivor = Journal(target, name="crash-test")
        records = survivor.open()
        survivor.close()
        assert records[0] == {"n": 1}
        assert len(records) in (1, 2)
        if len(records) == 2:
            assert records[1] == {"n": 2}

    @pytest.mark.parametrize("point", JOURNAL_POINTS)
    def test_post_crash_journal_accepts_new_appends(self, tmp_path, point):
        target = tmp_path / "ops.journal"
        journal = Journal(target, name="crash-test")
        journal.open()
        journal.append({"n": 1})
        journal.close()
        run_child(target, "journal", point)

        survivor = Journal(target, name="crash-test")
        survivor.open()
        survivor.append({"n": 3})
        survivor.close()
        reread = Journal(target, name="crash-test")
        records = reread.open()
        reread.close()
        assert records[0] == {"n": 1}
        assert records[-1] == {"n": 3}
        # every surviving record is intact — no CorruptStateError, no junk
        assert all(isinstance(record, dict) for record in records)


class TestCorruptionOnOpen:
    """Deliberate file damage (beyond what a single crash can produce)."""

    def test_truncated_snapshot_is_rejected_typed(self, tmp_path):
        target = tmp_path / "state.json"
        write_snapshot(target, "crash-test", {"v": 1})
        target.write_bytes(target.read_bytes()[:10])
        with pytest.raises(CorruptStateError):
            read_snapshot(target, "crash-test")

    def test_mid_file_journal_damage_is_rejected_typed(self, tmp_path):
        target = tmp_path / "ops.journal"
        journal = Journal(target, name="crash-test")
        journal.open()
        journal.append({"n": 1})
        journal.append({"n": 2})
        journal.close()
        raw = bytearray(target.read_bytes())
        raw[2] ^= 0xFF  # flip a bit inside the first record's CRC
        target.write_bytes(bytes(raw))
        with pytest.raises(CorruptStateError):
            Journal(target, name="crash-test").open()
