"""Distributed runtime: C1 and C2 as real OS processes over localhost TCP.

The acceptance bar for the transport subsystem: an end-to-end SkNN_m query
executed across two separate daemon processes must return **bit-identical**
results to the in-memory serial protocol stack on the same keypair and
dataset.  The CI distributed-smoke job runs this module at 256-bit keys
(``REPRO_DISTRIBUTED_BITS`` overrides locally).
"""

from __future__ import annotations

import os
from random import Random

import pytest

from repro.core.roles import DataOwner, QueryClient
from repro.core.system import SkNNSystem
from repro.db.datasets import synthetic_uniform
from repro.db.knn import LinearScanKNN
from repro.exceptions import ChannelError, ConfigurationError
from repro.transport.client import RemoteCloud
from repro.transport.supervisor import LocalSupervisor

KEY_BITS = int(os.environ.get("REPRO_DISTRIBUTED_BITS", "256"))

N_RECORDS = 10
DIMENSIONS = 2
DISTANCE_BITS = 7
QUERIES = ([3, 4], [6, 1])
K = 2


@pytest.fixture(scope="module")
def dataset():
    return synthetic_uniform(n_records=N_RECORDS, dimensions=DIMENSIONS,
                             distance_bits=DISTANCE_BITS, seed=5)


@pytest.fixture(scope="module")
def owner(dataset):
    """Alice with one key pair shared by the in-memory and distributed runs."""
    return DataOwner(dataset, key_size=KEY_BITS, rng=Random(20140709))


@pytest.fixture(scope="module")
def supervisor():
    """Two real daemon subprocesses, shared by the tests of this module."""
    with LocalSupervisor() as sup:
        yield sup


@pytest.fixture(scope="module")
def remote(supervisor, owner):
    return supervisor.provision_from_owner(owner, seed=11)


def serial_answers(owner, dataset, mode):
    """Reference answers from the in-memory (serial) protocol stack."""
    from repro.core.cloud import FederatedCloud

    cloud = FederatedCloud.deploy(owner.keypair, rng=Random(31))
    cloud.c1.host_database(owner.encrypt_database())
    client = QueryClient(owner.public_key, dataset.dimensions, rng=Random(32))
    if mode == "secure":
        from repro.core.sknn_secure import SkNNSecure
        protocol = SkNNSecure(cloud,
                              distance_bits=owner.distance_bit_length())
    else:
        from repro.core.sknn_basic import SkNNBasic
        protocol = SkNNBasic(cloud)
    answers = []
    for query in QUERIES:
        shares = protocol.run(client.encrypt_query(query), K)
        answers.append(client.reconstruct(shares))
    return answers


class TestBitIdenticalAnswers:
    """The acceptance criterion: distributed == serial, bit for bit."""

    @pytest.mark.parametrize("mode", ["basic", "secure"])
    def test_distributed_matches_serial(self, owner, dataset, remote, mode):
        client = QueryClient(owner.public_key, dataset.dimensions,
                             rng=Random(33))
        reference = serial_answers(owner, dataset, mode)
        oracle = LinearScanKNN(dataset)
        for query, expected in zip(QUERIES, reference):
            shares, report = remote.query(client.encrypt_query(query), K,
                                          mode=mode)
            neighbors = client.reconstruct(shares)
            assert neighbors == expected, (
                f"distributed {mode} answer differs from the serial stack")
            # ... and both equal the plaintext oracle.
            assert neighbors == [r.record.values
                                 for r in oracle.query(query, K)]
            if report is not None:
                # Real (measured) wire traffic, not simulated estimates.
                assert report.stats.bytes_transferred > 0
                assert report.stats.messages > 0

    def test_share_halves_never_meet_at_c1(self, owner, dataset, remote):
        """C1's query reply must not contain C2's decrypted half: the masks
        come from C1, the masked values only from C2's own connection."""
        client = QueryClient(owner.public_key, dataset.dimensions,
                             rng=Random(34))
        reply = remote.c1.request("transport.query", {
            "mode": "basic", "k": K,
            "query": client.encrypt_query(list(QUERIES[0])),
        })
        assert set(reply) == {"masks", "modulus", "delivery_id", "report"}
        masked = remote.c2.request("transport.fetch_share", {
            "delivery_id": reply["delivery_id"], "timeout": 30.0,
        })
        assert len(masked) == K
        records = [
            tuple((gamma - mask) % reply["modulus"]
                  for gamma, mask in zip(masked_row, mask_row))
            for mask_row, masked_row in zip(reply["masks"], masked)
        ]
        oracle = LinearScanKNN(dataset)
        assert records == [r.record.values
                           for r in oracle.query(QUERIES[0], K)]

    def test_fetching_a_share_twice_fails(self, owner, dataset, remote):
        """Shares are single-use: the mailbox hands each out exactly once."""
        client = QueryClient(owner.public_key, dataset.dimensions,
                             rng=Random(35))
        shares, _ = remote.query(client.encrypt_query(QUERIES[0]), K,
                                 mode="basic")
        with pytest.raises(ChannelError, match="no share filed"):
            remote.c2.request("transport.fetch_share", {
                "delivery_id": shares.delivery_id, "timeout": 0.2,
            })


class TestTelemetryStitching:
    """Cross-cloud observability: one trace, C2's work fully accounted."""

    def test_secure_query_yields_one_stitched_trace(self, owner, dataset,
                                                    remote):
        client = QueryClient(owner.public_key, dataset.dimensions,
                             rng=Random(36))
        _, report = remote.query(client.encrypt_query(list(QUERIES[0])), K,
                                 mode="secure")
        assert report is not None and report.trace is not None
        trace = report.trace
        spans = trace["spans"]
        assert spans, "a distributed query must produce spans"
        # Single trace: every span — C1's protocol rounds and C2's daemon
        # handler dispatches alike — carries the same trace id.
        assert {span["trace_id"] for span in spans} == {trace["trace_id"]}
        assert {span["party"] for span in spans} == {"C1", "C2"}
        names = [span["name"] for span in spans]
        assert any(name.startswith("query.SkNNm") for name in names)
        assert any(name.startswith("p2.") for name in names), (
            "C2 daemon dispatch spans must be stitched into C1's trace")
        # Spans arrive sorted by start time (the timeline contract).
        starts = [span["start"] for span in spans]
        assert starts == sorted(starts)

    def test_c2_operation_counts_match_serial_totals(self, owner, dataset,
                                                     remote):
        """The zero-C2-counters gap: the daemon's report must account the
        remote party's crypto work, and the grand totals must equal what
        the in-memory serial stack counts at identical parameters."""
        from repro.core.cloud import FederatedCloud
        from repro.core.sknn_secure import SkNNSecure

        client = QueryClient(owner.public_key, dataset.dimensions,
                             rng=Random(37))
        _, report = remote.query(client.encrypt_query(list(QUERIES[0])), K,
                                 mode="secure")
        assert report.stats.c2_encryptions > 0
        assert report.stats.c2_decryptions > 0
        assert report.stats.c2_exponentiations > 0

        cloud = FederatedCloud.deploy(owner.keypair, rng=Random(38))
        cloud.c1.host_database(owner.encrypt_database())
        serial_client = QueryClient(owner.public_key, dataset.dimensions,
                                    rng=Random(39))
        protocol = SkNNSecure(cloud, distance_bits=owner.distance_bit_length())
        protocol.run_with_report(
            serial_client.encrypt_query(list(QUERIES[0])), K)
        serial = protocol.last_report.stats

        distributed = report.stats
        # Decryptions and the wire transcript are rng-invariant: exact.
        assert distributed.total_decryptions == serial.total_decryptions
        assert distributed.messages == serial.messages
        assert distributed.ciphertexts_exchanged == \
            serial.ciphertexts_exchanged
        # Encryption/exponentiation counts wiggle by a handful of ops with
        # the protocol's coin flips (SMIN's random functionality choice),
        # so the parity bar is a tight relative tolerance, not equality.
        assert distributed.total_encryptions == pytest.approx(
            serial.total_encryptions, rel=0.02)
        assert distributed.total_exponentiations == pytest.approx(
            serial.total_exponentiations, rel=0.02)

    def test_metrics_control_tag_exposes_both_daemons(self, owner, dataset,
                                                      remote):
        """``transport.metrics`` returns each daemon's registry without
        needing the HTTP listener."""
        client = QueryClient(owner.public_key, dataset.dimensions,
                             rng=Random(40))
        remote.query(client.encrypt_query(list(QUERIES[0])), K, mode="basic")
        for role, payload in remote.metrics().items():
            assert payload["role"] == role
            assert "# TYPE" in payload["prometheus"]
        c2 = remote.metrics()["c2"]["snapshot"]
        steps = c2.get("repro_p2_steps_total", {}).get("values", {})
        assert steps and all(count > 0 for count in steps.values()), (
            "C2 must count its handler dispatches by tag")


class TestSystemIntegration:
    def test_sknn_system_distributed_mode(self, dataset):
        """``SkNNSystem`` spawns, provisions and shuts down its own pair."""
        oracle = LinearScanKNN(dataset)
        with SkNNSystem.setup(dataset, key_size=KEY_BITS, mode="distributed",
                              rng=Random(7), k_default=K) as system:
            answer = system.query_with_report(list(QUERIES[0]), K)
            assert answer.neighbors == [
                r.record.values for r in oracle.query(QUERIES[0], K)]
            assert answer.report is not None
            assert answer.report.protocol == "SkNNm"
            supervisor = system.supervisor
            assert supervisor.running
        # Context exit shut the daemons down; nothing may leak.
        assert not supervisor.running

    def test_query_server_over_remote_store(self, owner, dataset, supervisor):
        """The scheduler batches concurrent sessions and dispatches each
        batch over the remote channel to the C1 daemon."""
        from repro.service.scheduler import QueryServer
        from repro.transport.client import RemoteStore

        oracle = LinearScanKNN(dataset)
        remote = supervisor.connect()
        remote.adopt_public_key(owner.public_key)
        remote.table_size = len(dataset)
        remote.dimensions = dataset.dimensions
        store = RemoteStore(remote, mode="basic")
        server = QueryServer(store, batch_size=2, rng=Random(44))
        try:
            alice_bob = server.open_session("bob-1")
            carol = server.open_session("bob-2")
            pending = [alice_bob.submit(list(QUERIES[0]), K),
                       carol.submit(list(QUERIES[1]), K)]
            answers = [p.result(timeout=120) for p in pending]
            for query, answer in zip(QUERIES, answers):
                assert answer.neighbors == [
                    r.record.values for r in oracle.query(query, K)]
                assert answer.report.protocol == "SkNNb-distributed"
            assert server.stats.queries_served == 2
        finally:
            server.stop()
            remote.close()


class TestConcurrentPipelinedQueries:
    """N in-flight queries overlap on the multiplexed peer link.

    The acceptance bar for the pipelined data plane: concurrency must not
    perturb a single query's observable result — answers stay bit-identical
    and the stitched per-query C2 operation counters and cost-ledger rows
    stay *exact*, because each query's C2 work runs in its own context
    worker under a thread-scoped counter.
    """

    def test_concurrent_queries_stay_exact(self, owner, dataset, remote):
        from concurrent.futures import ThreadPoolExecutor

        client = QueryClient(owner.public_key, dataset.dimensions,
                             rng=Random(41))
        oracle = LinearScanKNN(dataset)
        expected = {tuple(query): [r.record.values for r in oracle.query(
            list(query), K)] for query in QUERIES}

        # Solo baselines: the exact counters of uncontended runs.
        solo = {}
        for query in QUERIES:
            _, report = remote.query(client.encrypt_query(list(query)), K,
                                     mode="basic")
            solo[tuple(query)] = report.stats

        # Two concurrent in-flight queries per distinct query point, each
        # on its own client connection (the daemon pipelines them over the
        # shared peer link).  Queries are encrypted up front: QueryClient's
        # rng is not a shared-state concern we want in this test.
        jobs = [(tuple(query), client.encrypt_query(list(query)))
                for query in QUERIES for _ in range(2)]
        clones = [remote.clone() for _ in jobs]

        def run(index):
            query, encrypted = jobs[index]
            shares, report = clones[index].query(encrypted, K, mode="basic")
            return query, client.reconstruct(shares), report

        try:
            with ThreadPoolExecutor(max_workers=len(jobs)) as pool:
                results = list(pool.map(run, range(len(jobs))))
        finally:
            for clone in clones:
                clone.close()

        assert len(results) == len(jobs)
        for query, neighbors, report in results:
            assert neighbors == expected[query], (
                "a concurrent in-flight query returned a wrong answer")
            baseline = solo[query]
            stats = report.stats
            # Exactness under concurrency: same counters as the solo run.
            assert stats.c2_decryptions == baseline.c2_decryptions
            assert stats.c2_encryptions == baseline.c2_encryptions
            assert stats.messages == baseline.messages
            assert stats.ciphertexts_exchanged == \
                baseline.ciphertexts_exchanged
            # ... and the stitched C2 cost rows agree with those counters.
            totals: dict[str, float] = {}
            for row in report.cost_breakdown:
                if row["party"] == "C2":
                    for op, count in row["ops"].items():
                        totals[op] = totals.get(op, 0) + count
            assert totals.get("decryptions", 0) == stats.c2_decryptions
            assert totals.get("encryptions", 0) == stats.c2_encryptions

    def test_stats_expose_pipelining_introspection(self, remote):
        """/stats carries the inflight gauge and per-connection rows."""
        stats = remote.stats()
        for payload in stats.values():
            assert payload["inflight_queries"] == 0  # nothing running now
        c1 = stats["c1"]
        assert c1["peer_connections_target"] >= 1
        rows = c1["peer_connections"]
        assert rows and all({"index", "alive", "active_contexts",
                             "messages", "bytes_transferred"}
                            <= set(row) for row in rows)
        assert any(row["alive"] for row in rows)
        snapshot = remote.metrics()["c1"]["snapshot"]
        assert "repro_inflight_queries" in snapshot


class TestRestartWithPoolCache:
    def test_restarted_party_starts_hot(self, tmp_path, dataset):
        """--pool-cache: a restarted daemon pair reloads its warmed pools."""
        owner = DataOwner(dataset, key_size=KEY_BITS, rng=Random(61))
        cache_dir = tmp_path / "pool-caches"
        with LocalSupervisor(pool_cache=cache_dir) as sup:
            sup.provision_from_owner(owner, seed=3, precompute_queries=1)
            sup.restart()
            remote = sup.connect()
            reply = remote.provision(owner.keypair, owner.encrypt_database(),
                                     distance_bits=owner.distance_bit_length(),
                                     seed=4, precompute_queries=1)
            # Both daemons reloaded offline material their previous
            # incarnation computed.
            assert reply["c1"]["pool_items_loaded"] > 0
            assert reply["c2"]["pool_items_loaded"] > 0
            client = QueryClient(owner.public_key, dataset.dimensions,
                                 rng=Random(62))
            shares, _ = remote.query(client.encrypt_query(QUERIES[0]), K,
                                     mode="basic")
            oracle = LinearScanKNN(dataset)
            assert client.reconstruct(shares) == [
                r.record.values for r in oracle.query(QUERIES[0], K)]


class TestDaemonHygiene:
    def test_unprovisioned_query_is_rejected(self):
        with LocalSupervisor() as sup:
            remote = sup.connect()
            try:
                # The typed error frame reconstructs the daemon's actual
                # (non-retriable) exception on the client side.
                with pytest.raises(ConfigurationError, match="not provisioned"):
                    remote.c1.request("transport.query",
                                      {"mode": "basic", "k": 1, "query": []})
            finally:
                remote.close()

    def test_shutdown_leaves_no_processes(self, dataset):
        sup = LocalSupervisor().start()
        processes = dict(sup._processes)
        assert sup.running
        sup.shutdown()
        for role, process in processes.items():
            assert process.poll() is not None, f"{role} daemon still alive"
        assert not sup.running
