"""Equivalence of the batched protocol rounds with the scalar reference paths.

The vectorized kernel refactor (batched SM/SSED/SBD/SMIN rounds, chunked
worker scans) must be a pure performance change: every batched execution has
to produce the same functional outputs as the per-item scalar protocols, and
the full query protocols built on top of it must keep matching the plaintext
kNN oracle end-to-end.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.core.cloud import FederatedCloud
from repro.core.parallel import (
    chunk_records,
    ssed_chunk_worker,
    ssed_record_worker,
)
from repro.core.roles import DataOwner, QueryClient
from repro.core.sknn_basic import SkNNBasic
from repro.core.sknn_secure import SkNNSecure
from repro.db.datasets import synthetic_uniform
from repro.db.knn import LinearScanKNN
from repro.protocols.encoding import bits_to_int, encrypt_bits
from repro.protocols.sbd import SecureBitDecomposition
from repro.protocols.smin import SecureMinimum
from repro.protocols.sm import SecureMultiplication
from repro.protocols.ssed import SecureSquaredEuclideanDistance


class TestBatchedSubProtocols:
    def test_sm_batch_matches_scalar_outputs(self, setting):
        protocol = SecureMultiplication(setting)
        public = setting.public_key
        operands = [(3, 4), (-7, 2), (0, 99), (250, 250), (-5, -6)]
        pairs = [(public.encrypt(a), public.encrypt(b)) for a, b in operands]
        batch = protocol.run_batch(pairs)
        scalar = [protocol.run(a, b) for a, b in pairs]
        decrypt = setting.decryptor.decrypt_signed
        assert [decrypt(c) for c in batch] == [decrypt(c) for c in scalar]
        assert [decrypt(c) for c in batch] == [a * b for a, b in operands]

    def test_sm_batch_empty_input(self, setting):
        assert SecureMultiplication(setting).run_batch([]) == []

    def test_ssed_run_many_matches_scalar_runs(self, setting):
        protocol = SecureSquaredEuclideanDistance(setting)
        public = setting.public_key
        query = [1, 5, 2]
        records = [[4, 5, 6], [1, 5, 2], [0, 0, 0], [7, 1, 3]]
        enc_query = public.encrypt_vector(query)
        enc_records = [public.encrypt_vector(r) for r in records]
        batch = protocol.run_many(enc_query, enc_records)
        scalar = [protocol.run(enc_query, enc_record)
                  for enc_record in enc_records]
        decrypt = setting.decryptor.decrypt_signed
        assert [decrypt(c) for c in batch] == [decrypt(c) for c in scalar]
        expected = [sum((a - b) ** 2 for a, b in zip(query, record))
                    for record in records]
        assert [decrypt(c) for c in batch] == expected

    def test_ssed_run_many_truncates_label_columns(self, setting):
        protocol = SecureSquaredEuclideanDistance(setting)
        public = setting.public_key
        enc_query = public.encrypt_vector([1, 2])
        enc_record = public.encrypt_vector([3, 4, 999])  # trailing label
        [total] = protocol.run_many(enc_query, [enc_record])
        assert setting.decryptor.decrypt_signed(total) == (1-3)**2 + (2-4)**2

    def test_sbd_batch_matches_scalar_runs(self, setting):
        protocol = SecureBitDecomposition(setting, bit_length=7)
        public = setting.public_key
        values = [0, 1, 63, 64, 127, 90]
        batch = protocol.run_batch([public.encrypt(v) for v in values])
        decrypt = setting.decryptor.decrypt_signed
        for value, enc_bits in zip(values, batch):
            bits = [decrypt(b) for b in enc_bits]
            assert bits_to_int(bits) == value

    def test_smin_batch_matches_scalar_runs(self, setting):
        protocol = SecureMinimum(setting)
        public = setting.public_key
        cases = [(5, 9), (9, 5), (7, 7), (0, 31), (16, 15), (31, 0)]
        pairs = [(encrypt_bits(public, u, 5), encrypt_bits(public, v, 5))
                 for u, v in cases]
        batch = protocol.run_batch(pairs)
        decrypt = setting.decryptor.decrypt_signed
        for (u, v), enc_bits in zip(cases, batch):
            assert bits_to_int([decrypt(b) for b in enc_bits]) == min(u, v)

    def test_smin_batch_rejects_mixed_lengths(self, setting):
        protocol = SecureMinimum(setting)
        public = setting.public_key
        from repro.exceptions import ProtocolError
        with pytest.raises(ProtocolError):
            protocol.run_batch([
                (encrypt_bits(public, 1, 4), encrypt_bits(public, 2, 5)),
            ])


class TestChunkedWorkers:
    def test_chunk_worker_matches_record_worker(self, small_keypair):
        """The vectorized chunk kernel returns the same plaintext distances
        as the per-record scalar worker on identical inputs."""
        public = small_keypair.public_key
        private = small_keypair.private_key
        rng = Random(31)
        records = [[rng.randrange(0, 40) for _ in range(3)] for _ in range(5)]
        queries = [[rng.randrange(0, 40) for _ in range(3)] for _ in range(2)]
        enc_records = [[c.value for c in public.encrypt_vector(r, rng=rng)]
                       for r in records]
        enc_queries = [[c.value for c in public.encrypt_vector(q, rng=rng)]
                       for q in queries]
        n, p, q = public.n, private.p, private.q

        from repro.crypto.backend import get_backend
        start, chunk = ssed_chunk_worker(
            (0, enc_records, enc_queries, n, p, q, 77, get_backend().name))
        assert start == 0
        for record_index, record in enumerate(records):
            for query_index, query in enumerate(queries):
                expected = sum((a - b) ** 2 for a, b in zip(record, query))
                assert chunk[record_index][query_index] == expected
                # scalar reference worker agrees
                _, scalar_distance = ssed_record_worker(
                    (record_index, enc_records[record_index],
                     enc_queries[query_index], n, p, q, 78))
                assert scalar_distance == expected

    def test_chunk_records_partitioning(self):
        assert chunk_records(0, 4) == []
        chunks = chunk_records(10, 2, tasks_per_worker=2)
        assert chunks[0][0] == 0 and chunks[-1][1] == 10
        rebuilt = [i for start, stop in chunks for i in range(start, stop)]
        assert rebuilt == list(range(10))
        assert chunk_records(3, 8) == [(0, 1), (1, 2), (2, 3)]


class TestEndToEndOracleEquivalence:
    @pytest.fixture()
    def workload(self, medium_keypair):
        table = synthetic_uniform(n_records=12, dimensions=3,
                                  distance_bits=9, seed=321)
        owner = DataOwner(table, keypair=medium_keypair, rng=Random(322))
        cloud = FederatedCloud.deploy(medium_keypair, rng=Random(323))
        cloud.c1.host_database(owner.encrypt_database())
        client = QueryClient(medium_keypair.public_key, 3, rng=Random(324))
        return table, cloud, client

    def test_batched_sknn_basic_matches_oracle(self, workload):
        table, cloud, client = workload
        oracle = LinearScanKNN(table)
        protocol = SkNNBasic(cloud)
        for seed in range(3):
            query = [Random(seed).randrange(0, 16) for _ in range(3)]
            shares = protocol.run(client.encrypt_query(query), 4)
            neighbors = client.reconstruct(shares)
            expected = [r.record.values for r in oracle.query(query, 4)]
            assert [tuple(v) for v in expected] == neighbors

    def test_batched_sknn_secure_matches_oracle(self, workload):
        table, cloud, client = workload
        oracle = LinearScanKNN(table)
        protocol = SkNNSecure(cloud, distance_bits=9)
        query = [3, 7, 1]
        shares = protocol.run(client.encrypt_query(query), 3)
        neighbors = client.reconstruct(shares)
        expected_distances = sorted(
            r.squared_distance for r in oracle.query(query, 3))
        from repro.db.knn import squared_euclidean
        got_distances = sorted(squared_euclidean(record, query)
                               for record in neighbors)
        assert got_distances == expected_distances
