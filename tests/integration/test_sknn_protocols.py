"""Integration tests for SkNN_b and SkNN_m against the plaintext oracle."""

from __future__ import annotations

from random import Random

import pytest

from repro.core.cloud import FederatedCloud
from repro.core.roles import DataOwner, QueryClient
from repro.core.sknn_basic import SkNNBasic
from repro.core.sknn_secure import SkNNSecure
from repro.db.datasets import synthetic_uniform
from repro.db.knn import LinearScanKNN
from repro.exceptions import QueryError
from tests.integration.helpers import assert_valid_knn_answer


def build_deployment(table, keypair, seed: int):
    """Deploy a federated cloud hosting the encrypted table."""
    owner = DataOwner(table, keypair=keypair, rng=Random(seed))
    cloud = FederatedCloud.deploy(keypair, rng=Random(seed + 1))
    cloud.c1.host_database(owner.encrypt_database())
    client = QueryClient(keypair.public_key, table.dimensions, rng=Random(seed + 2))
    return cloud, client


@pytest.fixture(scope="module")
def small_table():
    return synthetic_uniform(n_records=12, dimensions=3, distance_bits=8, seed=21)


@pytest.fixture(scope="module")
def oracle(small_table):
    return LinearScanKNN(small_table)


class TestSkNNBasicCorrectness:
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_plaintext_oracle(self, small_table, oracle, small_keypair, k):
        cloud, client = build_deployment(small_table, small_keypair, seed=50 + k)
        protocol = SkNNBasic(cloud)
        query = [3, 7, 2]
        shares = protocol.run(client.encrypt_query(query), k)
        neighbors = client.reconstruct(shares)
        expected = [r.record.values for r in oracle.query(query, k)]
        assert neighbors == expected

    def test_k_equals_n_returns_whole_table(self, small_table, small_keypair):
        cloud, client = build_deployment(small_table, small_keypair, seed=60)
        protocol = SkNNBasic(cloud)
        shares = protocol.run(client.encrypt_query([0, 0, 0]), len(small_table))
        neighbors = client.reconstruct(shares)
        assert sorted(neighbors) == sorted(small_table.row_values())

    def test_invalid_k_rejected(self, small_table, small_keypair):
        cloud, client = build_deployment(small_table, small_keypair, seed=61)
        protocol = SkNNBasic(cloud)
        encrypted_query = client.encrypt_query([0, 0, 0])
        with pytest.raises(QueryError):
            protocol.run(encrypted_query, 0)
        with pytest.raises(QueryError):
            protocol.run(encrypted_query, len(small_table) + 1)

    def test_wrong_query_arity_rejected(self, small_table, small_keypair,
                                        small_table_query_arity=2):
        cloud, _ = build_deployment(small_table, small_keypair, seed=62)
        protocol = SkNNBasic(cloud)
        bad_query = [small_keypair.public_key.encrypt(0)] * small_table_query_arity
        with pytest.raises(QueryError):
            protocol.run(bad_query, 1)

    def test_report_contains_operation_counts(self, small_table, small_keypair):
        cloud, client = build_deployment(small_table, small_keypair, seed=63)
        protocol = SkNNBasic(cloud)
        protocol.run_with_report(client.encrypt_query([1, 1, 1]), 2)
        report = protocol.last_report
        assert report is not None
        assert report.protocol == "SkNNb"
        assert report.n_records == len(small_table)
        assert report.stats.total_encryptions > 0
        assert report.stats.total_decryptions > 0
        assert report.wall_time_seconds > 0


class TestSkNNSecureCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_plaintext_oracle(self, small_table, oracle, small_keypair, k):
        cloud, client = build_deployment(small_table, small_keypair, seed=70 + k)
        protocol = SkNNSecure(cloud, distance_bits=8)
        query = [5, 1, 6]
        shares = protocol.run(client.encrypt_query(query), k)
        neighbors = client.reconstruct(shares)
        # Tie-tolerant comparison: SMIN_n breaks distance ties arbitrarily.
        assert_valid_knn_answer(small_table, query, k, neighbors)

    def test_handles_duplicate_records(self, small_keypair):
        """Tied distances must still yield k distinct records."""
        from repro.db.schema import Schema
        from repro.db.table import Table
        schema = Schema.from_names(["x", "y"], maximum=15)
        table = Table.from_rows(schema, [[5, 5], [5, 5], [9, 9], [0, 0]])
        cloud, client = build_deployment(table, small_keypair, seed=80)
        protocol = SkNNSecure(cloud, distance_bits=9)
        shares = protocol.run(client.encrypt_query([5, 5]), 2)
        neighbors = client.reconstruct(shares)
        assert neighbors == [(5, 5), (5, 5)]

    def test_query_equal_to_a_record(self, small_table, oracle, small_keypair):
        cloud, client = build_deployment(small_table, small_keypair, seed=81)
        protocol = SkNNSecure(cloud, distance_bits=8)
        query = list(small_table.records[0].values)
        shares = protocol.run(client.encrypt_query(query), 1)
        neighbors = client.reconstruct(shares)
        assert neighbors[0] == small_table.records[0].values

    def test_chain_topology_matches_tournament(self, small_table, oracle,
                                               small_keypair):
        query = [2, 2, 2]

        cloud, client = build_deployment(small_table, small_keypair, seed=82)
        tournament = SkNNSecure(cloud, distance_bits=8,
                                sminn_topology="tournament")
        assert_valid_knn_answer(small_table, query, 2, client.reconstruct(
            tournament.run(client.encrypt_query(query), 2)))

        cloud, client = build_deployment(small_table, small_keypair, seed=83)
        chain = SkNNSecure(cloud, distance_bits=8, sminn_topology="chain")
        assert_valid_knn_answer(small_table, query, 2, client.reconstruct(
            chain.run(client.encrypt_query(query), 2)))

    def test_rejects_nonpositive_distance_bits(self, small_table, small_keypair):
        cloud, _ = build_deployment(small_table, small_keypair, seed=84)
        from repro.exceptions import ProtocolError
        with pytest.raises(ProtocolError):
            SkNNSecure(cloud, distance_bits=0)

    def test_report_and_counters(self, small_table, small_keypair):
        cloud, client = build_deployment(small_table, small_keypair, seed=85)
        protocol = SkNNSecure(cloud, distance_bits=8)
        protocol.run_with_report(client.encrypt_query([1, 2, 3]), 1,
                                 distance_bits=8)
        report = protocol.last_report
        assert report is not None
        assert report.protocol == "SkNNm"
        assert report.distance_bits == 8
        assert report.stats.total_decryptions > 0
