"""Tests for the secure kNN classifier extension."""

from __future__ import annotations

from collections import Counter
from random import Random

import pytest

from repro.db.datasets import heart_disease_table
from repro.db.knn import LinearScanKNN
from repro.db.schema import Schema
from repro.db.table import Table
from repro.exceptions import ConfigurationError, QueryError
from repro.extensions import SecureKNNClassifier


def make_labeled_table() -> Table:
    """A small two-class dataset: label 0 near the origin, label 1 far away."""
    schema = Schema.from_names(["x", "y", "label"], maximum=31)
    rows = [
        [1, 1, 0], [2, 1, 0], [1, 3, 0], [3, 2, 0], [2, 3, 0],
        [20, 20, 1], [21, 19, 1], [19, 21, 1], [22, 22, 1], [20, 23, 1],
    ]
    return Table.from_rows(schema, rows)


def plaintext_knn_vote(table: Table, label_index: int, features, k: int) -> int:
    """Plaintext oracle: majority label of the k nearest records."""
    feature_rows = [record.values[:label_index] + record.values[label_index + 1:]
                    for record in table]
    schema = Schema.uniform(len(features), maximum=2**20)
    feature_table = Table.from_rows(schema, feature_rows)
    neighbors = LinearScanKNN(feature_table).query(list(features), k)
    labels = [table.records[int(result.record_id[1:]) - 1].values[label_index]
              for result in neighbors]
    return Counter(labels).most_common(1)[0][0]


class TestSecureKNNClassifierBasicMode:
    def test_classifies_both_clusters_correctly(self):
        table = make_labeled_table()
        classifier = SecureKNNClassifier(table, label_column="label",
                                         key_size=128, mode="basic",
                                         rng=Random(1))
        assert classifier.classify([2, 2], k=3) == 0
        assert classifier.classify([20, 21], k=3) == 1

    def test_matches_plaintext_vote(self):
        table = make_labeled_table()
        classifier = SecureKNNClassifier(table, label_column="label",
                                         key_size=128, mode="basic",
                                         rng=Random(2))
        for features in ([5, 5], [15, 15], [1, 30]):
            expected = plaintext_knn_vote(table, 2, features, 3)
            assert classifier.classify(features, k=3) == expected

    def test_details_contain_votes_and_confidence(self):
        table = make_labeled_table()
        classifier = SecureKNNClassifier(table, label_column="label",
                                         key_size=128, mode="basic",
                                         rng=Random(3))
        result = classifier.classify_with_details([2, 2], k=5)
        assert result.label == 0
        assert result.votes == {0: 5}
        assert result.confidence == 1.0
        assert len(result.neighbors) == 5

    def test_label_column_can_be_anywhere(self):
        """The label need not be the last column of the user's table."""
        schema = Schema.from_names(["label", "x", "y"], maximum=31)
        rows = [[0, 1, 1], [0, 2, 2], [1, 20, 20], [1, 21, 21]]
        table = Table.from_rows(schema, rows)
        classifier = SecureKNNClassifier(table, label_column="label",
                                         key_size=128, mode="basic",
                                         rng=Random(4))
        assert classifier.classify([1, 2], k=3) == 0
        assert classifier.classify([20, 20], k=3) == 1

    def test_heart_disease_example_classification(self):
        """Classify the Example 1 patient by the diagnosis of its neighbors."""
        table = heart_disease_table(include_diagnosis=True)
        classifier = SecureKNNClassifier(table, label_column="num",
                                         key_size=128, mode="basic",
                                         rng=Random(5))
        # The 2 nearest records are t4 and t5, both with num = 3.
        result = classifier.classify_with_details(
            [58, 1, 4, 133, 196, 1, 2, 1, 6], k=2)
        assert result.label == 3
        assert result.votes == {3: 2}


class TestSecureKNNClassifierSecureMode:
    def test_secure_mode_matches_basic_mode(self):
        table = make_labeled_table()
        basic = SecureKNNClassifier(table, label_column="label", key_size=128,
                                    mode="basic", rng=Random(6))
        secure = SecureKNNClassifier(table, label_column="label", key_size=128,
                                     mode="secure", rng=Random(7))
        for features in ([2, 2], [21, 20]):
            assert basic.classify(features, k=3) == secure.classify(features, k=3)


class TestClassifierValidation:
    def test_unknown_label_column_rejected(self):
        with pytest.raises(ConfigurationError):
            SecureKNNClassifier(make_labeled_table(), label_column="missing",
                                key_size=128)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SecureKNNClassifier(make_labeled_table(), label_column="label",
                                key_size=128, mode="paranoid")

    def test_single_column_table_rejected(self):
        table = Table.from_rows(Schema.from_names(["label"], maximum=3), [[1], [2]])
        with pytest.raises(ConfigurationError):
            SecureKNNClassifier(table, label_column="label", key_size=128)

    def test_feature_arity_checked(self):
        classifier = SecureKNNClassifier(make_labeled_table(),
                                         label_column="label", key_size=128,
                                         rng=Random(8))
        with pytest.raises(QueryError):
            classifier.classify([1, 2, 3], k=2)
