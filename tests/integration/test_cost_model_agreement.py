"""Cross-validation of the analytic cost model against measured counters.

The calibrated projections used by the benchmark harness are only trustworthy
if the operation-count formulas match what the implementation actually does.
These tests run the real protocols with instrumented counters and compare
against :mod:`repro.analysis.cost_model` — exactly for the deterministic
protocols (SM, SSED), within a small tolerance for the randomized ones (SBD's
mask parity, SkNN_m's per-iteration branches).
"""

from __future__ import annotations

from random import Random

import pytest

from repro.analysis.cost_model import (
    sbd_counts,
    sknn_basic_counts,
    sknn_basic_split_counts,
    sknn_secure_counts,
    smin_counts,
    sm_counts,
    ssed_counts,
    ssed_scan_counts,
    ssed_scan_split_counts,
)
from repro.core.cloud import FederatedCloud
from repro.core.roles import DataOwner, QueryClient
from repro.core.sknn_basic import SkNNBasic
from repro.core.sknn_secure import SkNNSecure
from repro.crypto.precompute import PrecomputeConfig, PrecomputeEngine
from repro.db.datasets import synthetic_uniform
from repro.protocols.encoding import encrypt_bits
from repro.protocols.sbd import SecureBitDecomposition
from repro.protocols.smin import SecureMinimum
from repro.protocols.sm import SecureMultiplication
from repro.protocols.ssed import SecureSquaredEuclideanDistance


def totals(stats):
    """(encryptions, decryptions, exponentiations) from run statistics."""
    return (stats.total_encryptions, stats.total_decryptions,
            stats.total_exponentiations)


class TestSubProtocolCounts:
    def test_sm_exact(self, setting):
        protocol = SecureMultiplication(setting)
        result = protocol.run_instrumented(setting.public_key.encrypt(5),
                                           setting.public_key.encrypt(6))
        expected = sm_counts()
        assert totals(result.stats) == (expected.encryptions,
                                        expected.decryptions,
                                        expected.exponentiations)

    @pytest.mark.parametrize("dimensions", [1, 3, 6])
    def test_ssed_exact(self, setting, dimensions):
        protocol = SecureSquaredEuclideanDistance(setting)
        x = list(range(dimensions))
        y = list(range(1, dimensions + 1))
        result = protocol.run_instrumented(setting.public_key.encrypt_vector(x),
                                           setting.public_key.encrypt_vector(y))
        expected = ssed_counts(dimensions)
        assert totals(result.stats) == (expected.encryptions,
                                        expected.decryptions,
                                        expected.exponentiations)

    @pytest.mark.parametrize("dimensions,records", [(1, 4), (3, 5)])
    def test_ssed_scan_exact(self, setting, dimensions, records):
        """The batched scan must match its own model exactly (Section 4.4)."""
        protocol = SecureSquaredEuclideanDistance(setting)
        pk = setting.public_key
        query = pk.encrypt_vector(list(range(dimensions)))
        table = [pk.encrypt_vector([i + j for j in range(dimensions)])
                 for i in range(records)]
        pk.counter.reset()
        setting.decryptor.private_key.counter.reset()
        protocol.run_many(query, table)
        expected = ssed_scan_counts(records, dimensions)
        assert pk.counter.encryptions == expected.encryptions
        assert setting.decryptor.private_key.counter.decryptions == \
            expected.decryptions
        assert pk.counter.exponentiations == expected.exponentiations

    @pytest.mark.parametrize("bit_length", [4, 8])
    def test_sbd_within_tolerance(self, setting, bit_length):
        """SBD's cost depends on random mask parities: expected +- l/2."""
        protocol = SecureBitDecomposition(setting, bit_length)
        result = protocol.run_instrumented(setting.public_key.encrypt(3))
        expected = sbd_counts(bit_length)
        measured_enc, measured_dec, measured_exp = totals(result.stats)
        assert measured_dec == expected.decryptions
        assert abs(measured_enc - expected.encryptions) <= bit_length / 2 + 1
        assert abs(measured_exp - expected.exponentiations) <= bit_length / 2 + 1

    @pytest.mark.parametrize("bit_length", [4, 6])
    def test_smin_exact(self, setting, bit_length):
        protocol = SecureMinimum(setting)
        result = protocol.run_instrumented(
            encrypt_bits(setting.public_key, 3, bit_length),
            encrypt_bits(setting.public_key, 5, bit_length),
        )
        expected = smin_counts(bit_length)
        assert totals(result.stats) == (expected.encryptions,
                                        expected.decryptions,
                                        expected.exponentiations)


class TestQueryProtocolCounts:
    def deploy(self, table, keypair, seed):
        owner = DataOwner(table, keypair=keypair, rng=Random(seed))
        cloud = FederatedCloud.deploy(keypair, rng=Random(seed + 1))
        cloud.c1.host_database(owner.encrypt_database())
        client = QueryClient(keypair.public_key, table.dimensions,
                             rng=Random(seed + 2))
        return cloud, client

    def test_sknn_basic_counts_match_model(self, small_keypair):
        table = synthetic_uniform(n_records=10, dimensions=3, distance_bits=8,
                                  seed=5)
        cloud, client = self.deploy(table, small_keypair, seed=400)
        protocol = SkNNBasic(cloud)
        protocol.run_with_report(client.encrypt_query([1, 2, 3]), 2)
        stats = protocol.last_report.stats
        # The implementation runs the vectorized distance scan (query
        # negation hoisted across records), modeled by batched=True.
        expected = sknn_basic_counts(10, 3, 2, batched=True)
        assert stats.total_encryptions == expected.encryptions
        assert stats.total_decryptions == expected.decryptions
        assert stats.total_exponentiations == expected.exponentiations

    def test_sknn_basic_precomputed_counts_match_split_model(
            self, small_keypair):
        """Warm-pool SkNN_b: online counters match the split's online side
        and the engines' pooled takes match its offline side exactly."""
        n, m, k = 10, 3, 2
        table = synthetic_uniform(n_records=n, dimensions=m, distance_bits=8,
                                  seed=5)
        cloud, client = self.deploy(table, small_keypair, seed=402)
        # One engine per cloud, each with its own randomness (the model's
        # non-colluding split): C1's serves mask tuples, C2's the obfuscators
        # of its square re-encryptions.
        c1_engine = PrecomputeEngine(
            small_keypair.public_key, rng=Random(403),
            config=PrecomputeConfig.for_query_load(n, m, k, queries=1))
        c2_engine = PrecomputeEngine(
            small_keypair.public_key, rng=Random(408),
            config=PrecomputeConfig.for_decryptor_load(n, m, k, queries=1))
        c1_engine.warm()
        c2_engine.warm()
        cloud.attach_engine(c1_engine, c2_engine)
        try:
            encrypted_query = client.encrypt_query([1, 2, 3])
            protocol = SkNNBasic(cloud)
            protocol.run_with_report(encrypted_query, k)
            stats = protocol.last_report.stats
        finally:
            cloud.attach_engine(None)

        split = sknn_basic_split_counts(n, m, k)
        # Counter parity: every pooled take still counts as one logical
        # encryption, so total encryptions equal the offline-side model...
        assert stats.total_encryptions == split.offline.encryptions
        # ...while decryptions and exponentiations are the online residue.
        assert stats.total_decryptions == split.online.decryptions
        assert stats.total_exponentiations == split.online.exponentiations
        # The pools served every precomputable operation (no misses): the
        # two engines' offline ledgers cover all pooled takes of the query.
        pooled = c1_engine.pool_hit_total() + c2_engine.pool_hit_total()
        assert pooled >= split.offline.encryptions
        assert sum(c1_engine.misses.values()) == 0
        assert c2_engine.obfuscators.misses == 0
        # The split model is self-consistent with the precomputed pipeline.
        combined = split.offline + split.online
        expected = sknn_basic_counts(n, m, k, precomputed=True)
        assert combined == expected

    def test_ssed_scan_precomputed_split_exact(self, small_keypair):
        """The squaring-specialized scan matches its own split model."""
        records, dimensions = 5, 3
        cloud, _ = self.deploy(
            synthetic_uniform(n_records=records, dimensions=dimensions,
                              distance_bits=8, seed=7),
            small_keypair, seed=404)
        pk = small_keypair.public_key
        engine = PrecomputeEngine(
            pk, rng=Random(405),
            config=PrecomputeConfig(obfuscators=64, zn_masks=64))
        engine.warm()
        cloud.attach_engine(engine)
        try:
            protocol = SecureSquaredEuclideanDistance(cloud.setting)
            query = pk.encrypt_vector(list(range(dimensions)))
            table = [pk.encrypt_vector([i + j for j in range(dimensions)])
                     for i in range(records)]
            pk.counter.reset()
            cloud.c2.private_key.counter.reset()
            protocol.run_many(query, table)
        finally:
            cloud.attach_engine(None)
        split = ssed_scan_split_counts(records, dimensions)
        assert pk.counter.encryptions == split.offline.encryptions
        assert cloud.c2.private_key.counter.decryptions == \
            split.online.decryptions
        assert pk.counter.exponentiations == split.online.exponentiations

    def test_smin_engine_parity(self, small_keypair):
        """SMIN with pooled material keeps the exact Section 4.4 counts."""
        from repro.network.party import TwoPartySetting

        setting = TwoPartySetting.create(small_keypair, rng=Random(406))
        bit_length = 4
        engine = PrecomputeEngine(
            small_keypair.public_key, rng=Random(407),
            config=PrecomputeConfig(obfuscators=64, zeros=8, ones=8,
                                    zn_masks=32, nonzero_masks=16))
        engine.warm()
        setting.attach_engine(engine)
        try:
            protocol = SecureMinimum(setting)
            result = protocol.run_instrumented(
                encrypt_bits(setting.public_key, 3, bit_length),
                encrypt_bits(setting.public_key, 5, bit_length),
            )
        finally:
            setting.attach_engine(None)
        expected = smin_counts(bit_length)
        assert totals(result.stats) == (expected.encryptions,
                                        expected.decryptions,
                                        expected.exponentiations)

    def test_sknn_secure_counts_close_to_model(self, small_keypair):
        """SkNN_m has randomized branches; the model must agree within 15%."""
        table = synthetic_uniform(n_records=6, dimensions=2, distance_bits=7,
                                  seed=6)
        cloud, client = self.deploy(table, small_keypair, seed=401)
        protocol = SkNNSecure(cloud, distance_bits=7)
        protocol.run_with_report(client.encrypt_query([1, 2]), 2,
                                 distance_bits=7)
        stats = protocol.last_report.stats
        expected = sknn_secure_counts(6, 2, 2, 7)
        measured_total = (stats.total_encryptions + stats.total_decryptions
                          + stats.total_exponentiations)
        assert measured_total == pytest.approx(expected.total, rel=0.15)
