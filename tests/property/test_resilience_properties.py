"""Property-based tests for the resilience layer's idempotency guarantees.

The retry layer may replay any request an arbitrary number of times, in any
interleaving, and the system must behave as if each logical operation ran
exactly once: a duplicated query never re-runs the (counter-incrementing)
crypto work, a replayed ``fetch_share`` never yields a second share, and
single-use mailbox semantics survive every retry schedule Hypothesis can
invent.
"""

from __future__ import annotations

from random import Random

import pytest
from hypothesis import given, strategies as st

from tests.property.conftest import cached_keypair
from repro.exceptions import ChannelError, DeadlineExceeded, PeerUnavailable
from repro.resilience import ReplyCache, RetryPolicy, retry_call
from repro.transport.daemon import ShareMailbox

# A "schedule" is the order the client replays request keys in, duplicates
# and all — exactly what a retrying DaemonClient can generate.
key_schedules = st.lists(
    st.sampled_from(["q-a", "q-b", "q-c", "q-d"]), min_size=1, max_size=24)


@given(schedule=key_schedules)
def test_reply_cache_computes_each_key_exactly_once(schedule):
    cache = ReplyCache(name="prop")
    calls: dict[str, int] = {}

    def run(key):
        def compute():
            calls[key] = calls.get(key, 0) + 1
            return ("reply", key, calls[key])
        return cache.run(key, compute)

    results = {key: run(key) for key in schedule}
    for key in schedule:
        assert calls[key] == 1
        # every replay observed the first attempt's reply verbatim
        assert run(key) == results[key] == ("reply", key, 1)


@given(schedule=key_schedules)
def test_duplicated_queries_never_double_increment_paillier_counters(schedule):
    """A replayed transport.query must not redo encryption work."""
    public_key = cached_keypair(bits=128).public_key
    cache = ReplyCache(name="prop-crypto")
    before = public_key.counter.snapshot()["encryptions"]

    for key in schedule:
        cache.run(key, lambda: public_key.encrypt(7, rng=Random(1)))

    performed = public_key.counter.snapshot()["encryptions"] - before
    assert performed == len(set(schedule))


@given(
    delivery_ids=st.lists(st.integers(min_value=0, max_value=5),
                          min_size=1, max_size=6, unique=True),
    replays=st.lists(st.integers(min_value=0, max_value=7),
                     min_size=0, max_size=16),
)
def test_mailbox_token_replays_never_yield_a_second_share(delivery_ids,
                                                          replays):
    """Per delivery id: one tokened fetch consumes the share, replays of the
    same token read the memo, and the mailbox never re-delivers."""
    mailbox = ShareMailbox()
    shares = {}
    for delivery_id in delivery_ids:
        shares[delivery_id] = [[delivery_id, delivery_id + 1]]
        mailbox.put(delivery_id, shares[delivery_id])

    delivered = {}
    for delivery_id in delivery_ids:
        delivered[delivery_id] = mailbox.fetch(
            delivery_id, timeout=0.1, attempt=f"q-{delivery_id}")
        assert delivered[delivery_id] == shares[delivery_id]
    assert len(mailbox) == 0

    for replay_index in replays:
        delivery_id = delivery_ids[replay_index % len(delivery_ids)]
        again = mailbox.fetch(delivery_id, timeout=0.05,
                              attempt=f"q-{delivery_id}")
        assert again == delivered[delivery_id]
    assert len(mailbox) == 0


@given(delivery_id=st.integers(min_value=0, max_value=100),
       foreign_tokens=st.lists(st.text(alphabet="xyz", min_size=1,
                                       max_size=4),
                               min_size=1, max_size=4))
def test_mailbox_single_use_survives_foreign_tokens(delivery_id,
                                                    foreign_tokens):
    """Only the token that consumed a share may replay it; every other
    token (and the token-less path) is told the share does not exist."""
    mailbox = ShareMailbox()
    mailbox.put(delivery_id, [[1]])
    mailbox.fetch(delivery_id, timeout=0.1, attempt="owner")
    for token in foreign_tokens:
        with pytest.raises(ChannelError, match="no share filed"):
            mailbox.fetch(delivery_id, timeout=0.01, attempt=token)
    with pytest.raises(ChannelError, match="no share filed"):
        mailbox.fetch(delivery_id, timeout=0.01)
    # the rightful owner can still replay after all those rejections
    assert mailbox.fetch(delivery_id, timeout=0.1,
                         attempt="owner") == [[1]]


@given(failures=st.integers(min_value=0, max_value=6),
       max_attempts=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=2**16))
def test_retry_call_attempt_count_is_bounded(failures, max_attempts, seed):
    """Exactly ``min(failures + 1, max_attempts)`` attempts run, never more."""
    attempts = []

    def operation():
        attempts.append(1)
        if len(attempts) <= failures:
            raise PeerUnavailable("transient")
        return "done"

    policy = RetryPolicy(max_attempts=max_attempts, base_delay_seconds=0.0,
                         jitter=0.5)
    expected_attempts = min(failures + 1, max_attempts)
    if failures >= max_attempts:
        with pytest.raises(PeerUnavailable):
            retry_call(operation, policy, rng=Random(seed), op="prop")
    else:
        assert retry_call(operation, policy, rng=Random(seed),
                          op="prop") == "done"
    assert len(attempts) == expected_attempts


@given(retry_index=st.integers(min_value=0, max_value=12),
       seed=st.integers(min_value=0, max_value=2**16))
def test_backoff_is_bounded_and_deterministic(retry_index, seed):
    policy = RetryPolicy(base_delay_seconds=0.05, multiplier=2.0,
                         max_delay_seconds=2.0, jitter=0.5)
    delay = policy.backoff_seconds(retry_index, Random(seed))
    assert 0 <= delay <= policy.max_delay_seconds
    nominal = min(policy.base_delay_seconds * 2.0 ** retry_index,
                  policy.max_delay_seconds)
    assert delay >= nominal * (1.0 - policy.jitter) - 1e-12
    assert delay == policy.backoff_seconds(retry_index, Random(seed))


@given(keys=st.lists(st.integers(min_value=0, max_value=50),
                     min_size=1, max_size=40))
def test_reply_cache_capacity_is_respected(keys):
    cache = ReplyCache(capacity=8, name="prop-bound")
    for key in keys:
        cache.run(f"k{key}", lambda key=key: key)
    assert len(cache) <= 8


@given(schedule=st.lists(st.sampled_from(["a", "b", "c", "d", "e", "f"]),
                         min_size=1, max_size=40),
       capacity=st.integers(min_value=1, max_value=4))
def test_completed_reply_is_replayed_or_evicted_never_recomputed(schedule,
                                                                 capacity):
    """The durability contract of the reply memo, under every schedule:
    while a completed reply is still cached it is replayed verbatim — a
    recompute can only ever follow a FIFO eviction, and the memo never
    exceeds its capacity."""
    cache = ReplyCache(capacity=capacity, name="prop-evict")
    computes: dict[str, int] = {}
    last: dict[str, tuple] = {}
    for key in schedule:
        was_cached = key in cache  # membership counts completed entries only

        def compute(key=key):
            computes[key] = computes.get(key, 0) + 1
            return (key, computes[key])

        result = cache.run(key, compute)
        if was_cached:
            # replayed: the recorded reply, bit-identical, no recompute
            assert result == last[key]
        else:
            # evicted (or fresh): a recompute is expected and observable
            assert result == (key, computes[key])
        last[key] = result
        assert len(cache) <= capacity


def test_retried_fetch_after_timeout_still_single_use():
    """A fetch that timed out (share arrived late) then retried with the
    same token delivers exactly once."""
    mailbox = ShareMailbox()
    with pytest.raises(DeadlineExceeded):
        mailbox.fetch(3, timeout=0.05, attempt="q-late")
    mailbox.put(3, [[9]])
    assert mailbox.fetch(3, timeout=0.1, attempt="q-late") == [[9]]
    assert mailbox.fetch(3, timeout=0.1, attempt="q-late") == [[9]]
    assert len(mailbox) == 0
