"""Property tests for the precomputation engine's pool semantics.

The engine is only allowed to change *when* work happens, never *what* the
protocols compute.  These properties pin down the contract:

* any interleaving of takes against a pool of any size yields valid
  single-use encryptions — factors are never reused, even past exhaustion;
* pooled encryption is plaintext-equivalent to the plain path for arbitrary
  values, and counter parity holds exactly;
* mask tuples always decrypt to their stated mask, whatever mix of pooled
  and fallback tuples a drained pool serves.
"""

from __future__ import annotations

from random import Random

from hypothesis import given, strategies as st

from repro.crypto.precompute import (
    MASK_ZN,
    PrecomputeConfig,
    PrecomputeEngine,
)
from tests.property.conftest import cached_keypair

values_strategy = st.lists(
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    min_size=1, max_size=10,
)


def fresh_engine(obfuscators: int, zn_masks: int = 0,
                 seed: int = 5) -> PrecomputeEngine:
    keypair = cached_keypair()
    engine = PrecomputeEngine(
        keypair.public_key, rng=Random(seed),
        config=PrecomputeConfig(obfuscators=max(obfuscators, 1),
                                zeros=0, ones=0,
                                zn_masks=zn_masks),
        attach=False)
    engine.warm()
    return engine


@given(values=values_strategy, pool_size=st.integers(min_value=1, max_value=6))
def test_pooled_encryption_roundtrips_past_exhaustion(values, pool_size):
    """Correct plaintexts and distinct ciphertexts, warm or drained."""
    keypair = cached_keypair()
    engine = fresh_engine(pool_size)
    ciphertexts = [engine.encrypt(v) for v in values]
    assert [keypair.private_key.decrypt(c) for c in ciphertexts] == values
    assert len({c.value for c in ciphertexts}) == len(values)


@given(values=values_strategy)
def test_pooled_batch_counter_parity(values):
    """encrypt_batch through a pool advances counters like the plain path."""
    keypair = cached_keypair()
    engine = fresh_engine(obfuscators=4)
    counter = keypair.public_key.counter
    before = counter.snapshot()
    ciphertexts = engine.encrypt_batch(values)
    after = counter.snapshot()
    assert after["encryptions"] - before["encryptions"] == len(values)
    assert after["exponentiations"] == before["exponentiations"]
    assert keypair.private_key.decrypt_batch(ciphertexts) == values


@given(takes=st.integers(min_value=1, max_value=12),
       pooled=st.integers(min_value=0, max_value=6))
def test_mask_tuples_decrypt_to_their_mask(takes, pooled):
    """Pooled and fallback tuples are indistinguishable to the caller."""
    keypair = cached_keypair()
    engine = fresh_engine(obfuscators=2, zn_masks=pooled)
    tuples = engine.take_masks(takes, MASK_ZN)
    for r, enc_r in tuples:
        assert 0 <= r < keypair.public_key.n
        assert keypair.private_key.raw_decrypt(enc_r.value) == r
    assert len({enc.value for _, enc in tuples}) == takes
    served = engine.hits.get(f"mask:{MASK_ZN}", 0)
    missed = engine.misses.get(f"mask:{MASK_ZN}", 0)
    assert served == min(takes, pooled)
    assert served + missed == takes
