"""Property tests: the batch APIs are element-wise equal to the scalar paths.

The vectorized kernel (``encrypt_batch`` / ``decrypt_batch`` /
``scalar_mul_batch`` / ``add_batch``) is only allowed to be *faster* than the
per-call scalar API — never different.  These properties pin that down:

* batch encryption decrypts to exactly the input vector (windowed and
  textbook obfuscators, and bit-identical ciphertexts under explicit nonces);
* batch decryption equals per-element decryption on arbitrary ciphertexts;
* batch scalar multiplication equals the per-element operator, including the
  ``-1`` negation shortcut;
* every batch call advances the operation counters by exactly the totals the
  equivalent scalar loop would produce.

When gmpy2 is importable the same properties are re-checked under that
backend; otherwise the pure-Python backend covers the suite.
"""

from __future__ import annotations

from random import Random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.backend import available_backends, set_backend
from tests.property.conftest import cached_keypair

plaintexts = st.lists(
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    min_size=1, max_size=8,
)

#: Backends to run every property under (gmpy2 only when importable).
BACKENDS = available_backends()


@pytest.fixture(params=BACKENDS)
def backend_name(request):
    """Run the decorated test once per usable bigint backend."""
    set_backend(request.param)
    yield request.param
    set_backend(None)


@given(values=plaintexts, windowed=st.booleans())
def test_encrypt_batch_roundtrips(values, windowed):
    keypair = cached_keypair()
    ciphertexts = keypair.public_key.encrypt_batch(
        values, rng=Random(1), windowed=windowed)
    assert keypair.private_key.decrypt_batch(ciphertexts) == values


@given(values=plaintexts)
def test_encrypt_batch_explicit_nonces_match_scalar_path(values):
    keypair = cached_keypair()
    public = keypair.public_key
    nonce_rng = Random(2)
    nonces = [nonce_rng.randrange(1, public.n) for _ in values]
    batch = public.encrypt_batch(values, r_values=nonces)
    scalar = [public.encrypt(value, r_value=nonce)
              for value, nonce in zip(values, nonces)]
    assert [c.value for c in batch] == [c.value for c in scalar]


@given(values=plaintexts)
def test_decrypt_batch_matches_scalar_decrypt(values):
    keypair = cached_keypair()
    ciphertexts = [keypair.public_key.encrypt(v, rng=Random(3)) for v in values]
    batch = keypair.private_key.decrypt_batch(ciphertexts)
    scalar = [keypair.private_key.decrypt(c) for c in ciphertexts]
    assert batch == scalar


@given(values=plaintexts, data=st.data())
def test_scalar_mul_batch_matches_operator(values, data):
    keypair = cached_keypair()
    public = keypair.public_key
    ciphertexts = [public.encrypt(v, rng=Random(4)) for v in values]
    scalars = data.draw(st.lists(
        st.integers(min_value=-(2 ** 16), max_value=2 ** 16),
        min_size=len(values), max_size=len(values)))
    batch = public.scalar_mul_batch(ciphertexts, scalars)
    for cipher, original, scalar in zip(batch, ciphertexts, scalars):
        if scalar % public.n == public.n - 1:
            # Negation takes the inverse shortcut: same plaintext, different
            # raw representation than the textbook exponentiation.
            assert keypair.private_key.decrypt(cipher) == \
                keypair.private_key.decrypt(original * scalar)
        else:
            assert cipher.value == (original * scalar).value


@given(values=plaintexts)
def test_add_batch_matches_operator(values):
    keypair = cached_keypair()
    public = keypair.public_key
    left = [public.encrypt(v, rng=Random(5)) for v in values]
    right = [public.encrypt(v + 1, rng=Random(6)) for v in values]
    batch = public.add_batch(left, right)
    assert [c.value for c in batch] == [(a + b).value
                                        for a, b in zip(left, right)]


@given(values=plaintexts)
@settings(max_examples=10)
def test_batch_counters_match_scalar_totals(values):
    """One batch call must account exactly like the equivalent scalar loop."""
    keypair = cached_keypair()
    public, private = keypair.public_key, keypair.private_key
    public.counter.reset()
    private.counter.reset()

    ciphertexts = public.encrypt_batch(values, rng=Random(7))
    assert public.counter.encryptions == len(values)

    private.decrypt_batch(ciphertexts)
    assert private.counter.decryptions == len(values)

    public.scalar_mul_batch(ciphertexts, [-1] * len(values))
    assert public.counter.exponentiations == len(values)

    public.add_batch(ciphertexts, ciphertexts)
    assert public.counter.homomorphic_additions == len(values)


def test_batch_apis_consistent_across_backends(backend_name):
    """Same plaintext results under every available backend."""
    keypair = cached_keypair()
    public, private = keypair.public_key, keypair.private_key
    values = [-17, 0, 1, 2 ** 30, -(2 ** 30)]
    ciphertexts = public.encrypt_batch(values, rng=Random(8))
    assert private.decrypt_batch(ciphertexts) == values
    negated = public.scalar_mul_batch(ciphertexts, -1)
    assert private.decrypt_batch(negated) == [-v for v in values]
