"""Property-based tests for the secure sub-protocols (hypothesis).

These exercise the protocol invariants on arbitrary inputs from the declared
domains: SM multiplies, SSED computes the squared distance, SBD decomposes,
SMIN/SMIN_n select the true minimum, SBOR computes OR — always under
encryption, always checked against the plaintext ground truth.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.protocols.encoding import decrypt_bits, encrypt_bits
from repro.protocols.sbd import SecureBitDecomposition
from repro.protocols.sbor import SecureBitOr
from repro.protocols.smin import SecureMinimum
from repro.protocols.sminn import SecureMinimumOfN
from repro.protocols.sm import SecureMultiplication
from repro.protocols.ssed import SecureSquaredEuclideanDistance
from tests.property.conftest import cached_keypair, cached_setting

BIT_LENGTH = 6
values_6bit = st.integers(min_value=0, max_value=(1 << BIT_LENGTH) - 1)
attribute_values = st.integers(min_value=0, max_value=200)
vectors = st.lists(attribute_values, min_size=1, max_size=6)


@given(a=st.integers(min_value=0, max_value=2**24),
       b=st.integers(min_value=0, max_value=2**24))
def test_sm_computes_products(a, b):
    setting = cached_setting()
    keypair = cached_keypair()
    result = SecureMultiplication(setting).run(
        setting.public_key.encrypt(a), setting.public_key.encrypt(b))
    assert keypair.private_key.decrypt_raw_residue(result) == a * b


@given(data=st.data())
def test_ssed_computes_squared_distance(data):
    setting = cached_setting()
    keypair = cached_keypair()
    x = data.draw(vectors)
    y = data.draw(st.lists(attribute_values, min_size=len(x), max_size=len(x)))
    result = SecureSquaredEuclideanDistance(setting).run(
        setting.public_key.encrypt_vector(x),
        setting.public_key.encrypt_vector(y))
    expected = sum((a - b) ** 2 for a, b in zip(x, y))
    assert keypair.private_key.decrypt_raw_residue(result) == expected


@settings(max_examples=12)
@given(value=values_6bit)
def test_sbd_round_trip(value):
    setting = cached_setting()
    keypair = cached_keypair()
    bits = SecureBitDecomposition(setting, BIT_LENGTH).run(
        setting.public_key.encrypt(value))
    assert decrypt_bits(keypair.private_key, bits) == value


@settings(max_examples=12)
@given(u=values_6bit, v=values_6bit)
def test_smin_selects_minimum(u, v):
    setting = cached_setting()
    keypair = cached_keypair()
    result = SecureMinimum(setting).run(
        encrypt_bits(setting.public_key, u, BIT_LENGTH),
        encrypt_bits(setting.public_key, v, BIT_LENGTH))
    assert decrypt_bits(keypair.private_key, result) == min(u, v)


@settings(max_examples=8)
@given(values=st.lists(values_6bit, min_size=1, max_size=6))
def test_sminn_selects_global_minimum(values):
    setting = cached_setting()
    keypair = cached_keypair()
    result = SecureMinimumOfN(setting).run(
        [encrypt_bits(setting.public_key, v, BIT_LENGTH) for v in values])
    assert decrypt_bits(keypair.private_key, result) == min(values)


@given(a=st.integers(min_value=0, max_value=1),
       b=st.integers(min_value=0, max_value=1))
def test_sbor_is_logical_or(a, b):
    setting = cached_setting()
    keypair = cached_keypair()
    result = SecureBitOr(setting).run(
        setting.public_key.encrypt(a), setting.public_key.encrypt(b))
    assert keypair.private_key.decrypt(result) == (a | b)


@settings(max_examples=10)
@given(u=values_6bit, v=values_6bit)
def test_smin_is_commutative(u, v):
    """min(u, v) == min(v, u) regardless of the oblivious coin flips."""
    setting = cached_setting()
    keypair = cached_keypair()
    protocol = SecureMinimum(setting)
    first = decrypt_bits(keypair.private_key, protocol.run(
        encrypt_bits(setting.public_key, u, BIT_LENGTH),
        encrypt_bits(setting.public_key, v, BIT_LENGTH)))
    second = decrypt_bits(keypair.private_key, protocol.run(
        encrypt_bits(setting.public_key, v, BIT_LENGTH),
        encrypt_bits(setting.public_key, u, BIT_LENGTH)))
    assert first == second == min(u, v)
