"""Shared, lazily-created fixtures for the property-based tests.

Hypothesis re-runs test bodies many times; regenerating Paillier keys or
two-party settings inside each example would dominate the runtime and trip
Hypothesis' health checks about function-scoped fixtures.  The helpers here
build the expensive objects once per test module and hand out the cached
instances.
"""

from __future__ import annotations

from functools import lru_cache
from random import Random

from hypothesis import settings

from repro.crypto.paillier import PaillierKeyPair, generate_keypair
from repro.network.party import TwoPartySetting

# A single, conservative Hypothesis profile for the whole suite: protocol
# examples involve many modular exponentiations, so keep the example count
# moderate and the deadline disabled (individual examples can take >200 ms).
settings.register_profile("repro", max_examples=20, deadline=None)
settings.load_profile("repro")


@lru_cache(maxsize=None)
def cached_keypair(bits: int = 128) -> PaillierKeyPair:
    """A deterministic key pair shared by all property tests."""
    return generate_keypair(bits, Random(97))


@lru_cache(maxsize=None)
def cached_setting(bits: int = 128) -> TwoPartySetting:
    """A two-party setting shared by all property tests."""
    return TwoPartySetting.create(cached_keypair(bits), rng=Random(98))
