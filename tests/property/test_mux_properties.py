"""Property tests for query-id frame multiplexing on the peer link.

The pipelined transport interleaves frames from N concurrent query contexts
over one socket.  Two invariants make that safe for the protocol stack:

1. **Routing** — every frame is delivered to exactly the context that sent
   its query id, in per-context FIFO order, no matter how the schedules
   interleave (including full-duplex echo traffic).
2. **Accounting** — byte/ciphertext/message accounting is transport
   identical: each context's channel counts precisely its own framed bytes
   (header + encoded body, the same rule as ``TcpChannel``), and the
   connection-level totals equal the sum over contexts.
"""

from __future__ import annotations

import socket
import threading
from collections import defaultdict

from hypothesis import given, strategies as st

from repro.network.channel import Message, _count_payload
from repro.transport.channel import TcpChannel
from repro.transport.framing import FRAME_HEADER_BYTES
from repro.transport.mux import MuxConnection
from repro.transport.wire import WireCodec

DONE_TAG = "prop.done"

payloads = st.one_of(
    st.integers(min_value=0, max_value=2**48),
    st.text(alphabet="abcxyz0123", max_size=12),
    st.lists(st.integers(min_value=0, max_value=255), max_size=6),
)

#: an interleaved schedule: which context sends next, and what.
schedules = st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                               payloads),
                     min_size=1, max_size=24)


def _expected_frame_bytes(codec: WireCodec, sender: str, recipient: str,
                          tag: str, payload, context) -> int:
    """The accounting rule: actual framed bytes = header + encoded body."""
    body = codec.encode_message(Message(
        sender=sender, recipient=recipient, tag=tag, payload=payload,
        trace=None, context=context))
    return FRAME_HEADER_BYTES + len(body)


def _mux_pair(on_new_context=None):
    """A connected MuxConnection pair (C1 side, C2 side) over a socketpair."""
    codec = WireCodec()
    sock_a, sock_b = socket.socketpair()
    side_a = MuxConnection(sock_a, codec, "C1", "C2", io_deadline=30.0)
    side_b = MuxConnection(sock_b, codec, "C2", "C1", io_deadline=30.0,
                           on_new_context=on_new_context)
    return codec, side_a, side_b


@given(schedule=schedules)
def test_interleaved_frames_dispatch_to_their_context(schedule):
    """Concurrent senders + echo workers: routing stays per-context FIFO."""
    per_context: dict[int, list] = defaultdict(list)
    for index, (context, payload) in enumerate(schedule):
        per_context[context].append((f"prop.t{index}", payload))

    workers: list[threading.Thread] = []

    def echo(channel):
        """C2-side worker: echo every frame of one context back."""
        def run():
            while True:
                tag = channel.next_tag()
                payload = channel.receive("C2")
                channel.send("C2", payload, tag=tag)
                if tag == DONE_TAG:
                    return
        thread = threading.Thread(target=run, daemon=True)
        workers.append(thread)
        thread.start()

    codec, side_a, side_b = _mux_pair(on_new_context=echo)
    try:
        side_a.start_reader()
        side_b.start_reader()
        channels = {context: side_a.channel(f"q{context}")
                    for context in per_context}
        errors: list[BaseException] = []

        def drive(context: int) -> None:
            channel = channels[context]
            frames = per_context[context] + [(DONE_TAG, "done")]
            try:
                for tag, payload in frames:
                    channel.send("C1", payload, tag=tag)
                for tag, payload in frames:
                    # The echo must come back on the same context, in order.
                    assert channel.receive("C1", expected_tag=tag) == payload
            except BaseException as exc:  # noqa: BLE001 - reraised below
                errors.append(exc)

        drivers = [threading.Thread(target=drive, args=(context,))
                   for context in per_context]
        for thread in drivers:
            thread.start()
        for thread in drivers:
            thread.join(timeout=60.0)
        for thread in workers:
            thread.join(timeout=60.0)
        if errors:
            raise errors[0]

        # -- accounting: per-context totals, transport-identical rule -------
        connection_out = 0
        for context, frames in per_context.items():
            channel = channels[context]
            all_frames = frames + [(DONE_TAG, "done")]
            expected_out = sum(
                _expected_frame_bytes(codec, "C1", "C2", tag, payload,
                                      f"q{context}")
                for tag, payload in all_frames)
            expected_in = sum(
                _expected_frame_bytes(codec, "C2", "C1", tag, payload,
                                      f"q{context}")
                for tag, payload in all_frames)
            expected_items = sum(_count_payload(payload)[1]
                                 for _, payload in all_frames)
            out = channel.traffic["C1"].snapshot()
            inbound = channel.traffic["C2"].snapshot()
            assert out["bytes_transferred"] == expected_out
            assert inbound["bytes_transferred"] == expected_in
            assert out["messages"] == inbound["messages"] == len(all_frames)
            assert out["plaintext_items"] == expected_items
            assert inbound["plaintext_items"] == expected_items
            connection_out += expected_out

        # context totals sum to the connection's wire totals
        assert (side_a.traffic["C1"].snapshot()["bytes_transferred"]
                == connection_out)
        assert (side_a.traffic["C1"].snapshot()["messages"]
                == sum(len(frames) + 1
                       for frames in per_context.values()))
        # the peer observed byte-for-byte what this side accounted
        assert (side_b.traffic["C1"].snapshot()["bytes_transferred"]
                == connection_out)
    finally:
        side_a.close()
        side_b.close()


@given(schedule=st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                                   payloads),
                         min_size=1, max_size=16))
def test_default_context_accounting_matches_tcp_channel(schedule):
    """The ``None`` context is byte-identical to the plain ``TcpChannel``.

    Old (pre-pipelining) peers speak exactly this: frames with no context
    id.  Sending the same tagged payloads over a ``TcpChannel`` pair and
    over a mux connection's default context must produce identical traffic
    snapshots on both sides — same bytes, same message/ciphertext/item
    counts, same per-tag split.
    """
    codec = WireCodec()

    # Reference: the PR-4 single-channel transport.
    sock_a, sock_b = socket.socketpair()
    tcp_a = TcpChannel(sock_a, codec, "C1", "C2")
    tcp_b = TcpChannel(sock_b, codec, "C2", "C1")
    try:
        for tag, payload in schedule:
            tcp_a.send("C1", payload, tag=f"prop.{tag}")
        for tag, payload in schedule:
            assert tcp_b.receive("C2", expected_tag=f"prop.{tag}") == payload
        tcp_out = tcp_a.traffic["C1"].snapshot()
        tcp_in = tcp_b.traffic["C1"].snapshot()
        tcp_out_tags = tcp_a.traffic["C1"].per_tag_snapshot()
    finally:
        tcp_a.close()
        tcp_b.close()

    # Candidate: the same frames on a mux connection's default context.
    delivered = []
    mux_codec, side_a, side_b = _mux_pair(
        on_new_context=lambda channel: delivered.append(channel))
    try:
        side_b.start_reader()
        channel = side_a.channel(None)
        for tag, payload in schedule:
            channel.send("C1", payload, tag=f"prop.{tag}")
        assert len(delivered) == 0 or len(delivered) == 1
        peer = side_b.channel(None)
        for tag, payload in schedule:
            assert peer.receive("C2", expected_tag=f"prop.{tag}") == payload
        mux_out = channel.traffic["C1"].snapshot()
        mux_in = peer.traffic["C1"].snapshot()
        mux_out_tags = channel.traffic["C1"].per_tag_snapshot()
    finally:
        side_a.close()
        side_b.close()

    assert mux_out == tcp_out
    assert mux_in == tcp_in
    assert mux_out_tags == tcp_out_tags
