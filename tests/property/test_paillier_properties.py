"""Property-based tests for the Paillier cryptosystem (hypothesis)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from tests.property.conftest import cached_keypair

#: Plaintexts well below N/2 so signed encoding is always unambiguous.
plaintexts = st.integers(min_value=0, max_value=2**48)
signed_plaintexts = st.integers(min_value=-(2**40), max_value=2**40)
small_scalars = st.integers(min_value=0, max_value=2**16)


@given(value=signed_plaintexts)
def test_encrypt_decrypt_round_trip(value):
    keypair = cached_keypair()
    assert keypair.private_key.decrypt(keypair.public_key.encrypt(value)) == value


@given(a=plaintexts, b=plaintexts)
def test_homomorphic_addition(a, b):
    keypair = cached_keypair()
    public, private = keypair.public_key, keypair.private_key
    result = public.encrypt(a) + public.encrypt(b)
    assert private.decrypt(result) == a + b


@given(a=plaintexts, constant=plaintexts)
def test_homomorphic_plaintext_addition(a, constant):
    keypair = cached_keypair()
    result = keypair.public_key.encrypt(a) + constant
    assert keypair.private_key.decrypt(result) == a + constant


@given(a=st.integers(min_value=0, max_value=2**32), scalar=small_scalars)
def test_homomorphic_scalar_multiplication(a, scalar):
    keypair = cached_keypair()
    result = keypair.public_key.encrypt(a) * scalar
    assert keypair.private_key.decrypt(result) == a * scalar


@given(a=signed_plaintexts, b=signed_plaintexts)
def test_homomorphic_subtraction(a, b):
    keypair = cached_keypair()
    public, private = keypair.public_key, keypair.private_key
    result = public.encrypt(a) - public.encrypt(b)
    assert private.decrypt(result) == a - b


@given(value=plaintexts)
def test_rerandomization_preserves_plaintext(value):
    keypair = cached_keypair()
    original = keypair.public_key.encrypt(value)
    refreshed = original.randomize()
    assert refreshed.value != original.value
    assert keypair.private_key.decrypt(refreshed) == value


@given(value=signed_plaintexts)
def test_signed_encoding_round_trip(value):
    public = cached_keypair().public_key
    assert public.decode_signed(public.encode_signed(value)) == value


@given(value=plaintexts)
def test_crt_decryption_matches_naive(value):
    keypair = cached_keypair()
    cipher = keypair.public_key.encrypt(value)
    assert keypair.private_key.raw_decrypt(cipher.value, use_crt=True) == \
        keypair.private_key.raw_decrypt(cipher.value, use_crt=False)


@given(a=plaintexts, b=plaintexts, c=plaintexts)
def test_addition_is_associative_under_decryption(a, b, c):
    keypair = cached_keypair()
    public, private = keypair.public_key, keypair.private_key
    left = (public.encrypt(a) + public.encrypt(b)) + public.encrypt(c)
    right = public.encrypt(a) + (public.encrypt(b) + public.encrypt(c))
    assert private.decrypt(left) == private.decrypt(right) == a + b + c
