"""Property-based tests for the database substrate and plaintext kNN engines."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.db.knn import KDTreeKNN, LinearScanKNN, squared_euclidean
from repro.db.schema import Schema
from repro.db.table import Table
from repro.protocols.encoding import bits_to_int, int_to_bits
from tests.property.conftest import cached_keypair

coordinates = st.integers(min_value=0, max_value=63)


def build_table(rows):
    schema = Schema.uniform(len(rows[0]), maximum=63)
    return Table.from_rows(schema, rows)


@settings(max_examples=25)
@given(data=st.data())
def test_kdtree_agrees_with_linear_scan(data):
    dimensions = data.draw(st.integers(min_value=1, max_value=4))
    rows = data.draw(st.lists(
        st.lists(coordinates, min_size=dimensions, max_size=dimensions),
        min_size=2, max_size=25))
    table = build_table(rows)
    query = data.draw(st.lists(coordinates, min_size=dimensions,
                               max_size=dimensions))
    k = data.draw(st.integers(min_value=1, max_value=len(rows)))
    linear = [r.record_id for r in LinearScanKNN(table).query(query, k)]
    tree = [r.record_id for r in KDTreeKNN(table).query(query, k)]
    assert linear == tree


@settings(max_examples=25)
@given(data=st.data())
def test_knn_results_sorted_by_distance(data):
    dimensions = data.draw(st.integers(min_value=1, max_value=3))
    rows = data.draw(st.lists(
        st.lists(coordinates, min_size=dimensions, max_size=dimensions),
        min_size=3, max_size=20))
    table = build_table(rows)
    query = data.draw(st.lists(coordinates, min_size=dimensions,
                               max_size=dimensions))
    results = LinearScanKNN(table).query(query, len(rows))
    distances = [r.squared_distance for r in results]
    assert distances == sorted(distances)
    for result in results:
        assert result.squared_distance == squared_euclidean(
            result.record.values, query)


@given(left=st.lists(coordinates, min_size=1, max_size=8), data=st.data())
def test_squared_euclidean_properties(left, data):
    right = data.draw(st.lists(coordinates, min_size=len(left), max_size=len(left)))
    distance = squared_euclidean(left, right)
    assert distance >= 0
    assert distance == squared_euclidean(right, left)
    assert squared_euclidean(left, left) == 0


@given(value=st.integers(min_value=0, max_value=2**16 - 1))
def test_bit_codec_round_trip(value):
    assert bits_to_int(int_to_bits(value, 16)) == value


@given(value=st.integers(min_value=0, max_value=255))
def test_encrypted_table_cell_round_trip(value):
    """Encrypting then decrypting any schema-valid cell value is lossless."""
    keypair = cached_keypair()
    cipher = keypair.public_key.encrypt(value)
    assert keypair.private_key.decrypt(cipher) == value
