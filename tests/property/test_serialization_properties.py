"""Property-based tests for serialization round-trips (hypothesis)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.crypto import serialization as ser
from repro.db.encrypted_table import EncryptedTable
from repro.db.schema import Schema
from repro.db.table import Table
from tests.property.conftest import cached_keypair

plaintexts = st.integers(min_value=-(2**40), max_value=2**40)


@given(value=plaintexts)
def test_ciphertext_json_round_trip(value):
    keypair = cached_keypair()
    cipher = keypair.public_key.encrypt(value)
    text = ser.dumps(ser.ciphertext_to_dict(cipher))
    restored = ser.ciphertext_from_dict(ser.loads(text), keypair.public_key)
    assert keypair.private_key.decrypt(restored) == value


@given(rows=st.lists(
    st.lists(st.integers(min_value=0, max_value=255), min_size=2, max_size=2),
    min_size=1, max_size=6))
def test_encrypted_table_round_trip(rows):
    keypair = cached_keypair()
    table = Table.from_rows(Schema.uniform(2, maximum=255), rows)
    encrypted = EncryptedTable.encrypt_table(table, keypair.public_key)
    restored = EncryptedTable.from_dict(encrypted.to_dict())
    assert restored.decrypt(keypair.private_key).row_values() == table.row_values()


@given(value=st.integers(min_value=0, max_value=2**256))
def test_hex_integer_round_trip(value):
    assert ser._hex_to_int(ser._int_to_hex(value)) == value


def test_keypair_round_trip_preserves_decryption():
    keypair = cached_keypair()
    restored = ser.keypair_from_dict(ser.loads(ser.dumps(ser.keypair_to_dict(keypair))))
    cipher = keypair.public_key.encrypt(777)
    assert restored.private_key.decrypt(cipher) == 777
