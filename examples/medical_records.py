#!/usr/bin/env python3
"""The paper's running example: a physician querying encrypted medical records.

Reproduces Example 1 end to end on the heart-disease sample of Tables 1-2:

* the hospital (Alice) encrypts the patient table and outsources it,
* the physician (Bob) submits the encrypted patient record
  ``Q = <58, 1, 4, 133, 196, 1, 2, 1, 6>``, and
* the clouds return the two most similar historical patients — which the
  paper states are records t4 and t5 — without ever seeing a plaintext value.

Both protocols are run so their security/efficiency trade-off is visible: the
basic protocol (SkNN_b) answers quickly but reveals distances and access
patterns to the clouds, while the fully secure protocol (SkNN_m) hides both.

Run it with::

    python examples/medical_records.py
"""

from __future__ import annotations

import time
from random import Random

from repro import SkNNSystem
from repro.db import (
    heart_disease_example_query,
    heart_disease_schema,
    heart_disease_table,
)
from repro.db.knn import LinearScanKNN


def describe_patient(values: tuple[int, ...]) -> str:
    """Format a returned record using the attribute names of Table 2."""
    schema = heart_disease_schema(include_diagnosis=False)
    parts = [f"{name}={value}" for name, value in zip(schema.names, values)]
    return ", ".join(parts)


def main() -> None:
    table = heart_disease_table(include_diagnosis=False)
    query = heart_disease_example_query()
    k = 2

    print("Heart-disease sample (Table 1 of the paper):")
    for record in table:
        print(f"  {record.record_id}: {record.values}")
    print(f"\nPhysician's query (Example 1): {query}")

    oracle = LinearScanKNN(table)
    expected_ids = [r.record_id for r in oracle.query(query, k)]
    print(f"Expected nearest records (plaintext check): {expected_ids}")

    for mode, label in (("basic", "SkNN_b (efficient, leaks access patterns)"),
                        ("secure", "SkNN_m (fully secure)")):
        system = SkNNSystem.setup(table, key_size=256, mode=mode, rng=Random(2014))
        started = time.perf_counter()
        neighbors = system.query(query, k)
        elapsed = time.perf_counter() - started
        print(f"\n{label}  [{elapsed:.2f} s]")
        for rank, record in enumerate(neighbors, start=1):
            print(f"  neighbor {rank}: {describe_patient(record)}")

    print("\nBoth protocols return the same two patients (t4 and t5); only the"
          "\namount of information revealed to the clouds differs.")


if __name__ == "__main__":
    main()
