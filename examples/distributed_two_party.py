#!/usr/bin/env python3
"""The two-cloud protocol as two real OS processes talking TCP.

Everywhere else in this repository the paper's non-colluding clouds C1 and
C2 are simulated inside one Python process.  This example runs the real
thing:

* a **C2 daemon** process holding only the Paillier secret key;
* a **C1 daemon** process holding only the encrypted table (and the public
  key), connected to C2 over a length-prefixed TCP framing of the protocol
  messages;
* **Alice** (this process) provisioning both daemons — secret key to C2,
  encrypted table to C1;
* **Bob** (this process) encrypting a query, sending it to C1, fetching
  C2's share half over his *own* connection to C2, and recombining the two
  halves locally — the only place they ever meet, exactly as in the paper.

Both the leaky-but-fast SkNN_b and the fully secure SkNN_m run over the
wire, and the traffic numbers in the report are measured bytes, not
simulated estimates.

Run it with::

    python examples/distributed_two_party.py
"""

from __future__ import annotations

from random import Random

from repro.core.roles import DataOwner, QueryClient
from repro.db.datasets import synthetic_uniform
from repro.db.knn import LinearScanKNN
from repro.transport import LocalSupervisor

KEY_BITS = 256


def main() -> int:
    table = synthetic_uniform(n_records=12, dimensions=2, distance_bits=7,
                              seed=14)
    alice = DataOwner(table, key_size=KEY_BITS, rng=Random(2014))
    bob = QueryClient(alice.public_key, table.dimensions, rng=Random(7))
    oracle = LinearScanKNN(table)
    query, k = [3, 4], 2

    print(f"{table.describe()}; query={query}, k={k}, "
          f"key size {KEY_BITS} bits")
    print("spawning the C1 and C2 daemons as separate OS processes ...")
    with LocalSupervisor() as supervisor:
        print(f"  C1 daemon: {supervisor.addresses['c1']}")
        print(f"  C2 daemon: {supervisor.addresses['c2']}")
        remote = supervisor.provision_from_owner(alice, seed=99)
        print("provisioned: secret key -> C2, encrypted table -> C1")

        expected = [r.record.values for r in oracle.query(query, k)]
        for mode, label in (("basic", "SkNN_b (leaky, fast)"),
                            ("secure", "SkNN_m (fully secure)")):
            shares, report = remote.query(bob.encrypt_query(query), k,
                                          mode=mode)
            neighbors = bob.reconstruct(shares)
            matches = neighbors == expected
            print(f"\n{label} over TCP:")
            for rank, record in enumerate(neighbors, start=1):
                print(f"  neighbor {rank}: {record}")
            print(f"  matches the plaintext oracle: {matches}")
            if report is not None:
                stats = report.stats
                print(f"  measured wire traffic: {stats.messages} messages, "
                      f"{stats.ciphertexts_exchanged} ciphertexts, "
                      f"{stats.bytes_transferred:,} bytes")
            if not matches:
                return 1
    print("\ndaemons shut down; no processes left behind")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
