#!/usr/bin/env python3
"""Quickstart: answer a secure kNN query in a few lines.

This walks through the whole life-cycle of the paper's setting on a small
synthetic table:

1. Alice (the data owner) generates a Paillier key pair and encrypts her
   database attribute-wise.
2. The encrypted database is outsourced to cloud C1; the secret key goes to
   the non-colluding cloud C2.
3. Bob encrypts a query record and submits it.
4. The clouds run the fully secure SkNN_m protocol (Algorithm 6) and hand Bob
   two shares, which he combines into the k nearest records.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from random import Random

from repro import SkNNSystem
from repro.baselines import PlaintextKNNSystem
from repro.db import synthetic_uniform


def main() -> None:
    # A small synthetic table: 20 records, 3 attributes, distances < 2**8.
    table = synthetic_uniform(n_records=20, dimensions=3, distance_bits=8, seed=7)
    print(table.describe())

    # One call stands up Alice, both clouds and Bob.  The 256-bit key keeps
    # this example fast; use 512 or 1024 bits (the paper's sizes) in practice.
    system = SkNNSystem.setup(table, key_size=256, mode="secure", rng=Random(42))

    query = [5, 9, 2]
    k = 3
    print(f"\nQuery record: {query}  (k={k})")

    answer = system.query_with_report(query, k)
    print("\nSecure kNN result (only Bob learns these records):")
    for rank, record in enumerate(answer.neighbors, start=1):
        print(f"  {rank}. {record}")

    # Sanity check against a plaintext scan — the secure protocol is exact.
    expected = PlaintextKNNSystem(table).query(query, k)
    print("\nMatches the plaintext answer:", answer.neighbors == expected)

    report = answer.report
    print("\nProtocol statistics (both clouds combined):")
    print(f"  wall time          : {report.wall_time_seconds:.2f} s")
    print(f"  Paillier encryptions: {report.stats.total_encryptions}")
    print(f"  Paillier decryptions: {report.stats.total_decryptions}")
    print(f"  exponentiations     : {report.stats.total_exponentiations}")
    print(f"  messages exchanged  : {report.stats.messages}")
    print(f"  Bob's own cost      : "
          f"{(answer.client_encrypt_seconds + answer.client_reconstruct_seconds) * 1000:.1f} ms")


if __name__ == "__main__":
    main()
