#!/usr/bin/env python3
"""Location-based services: nearest points of interest without revealing where you are.

The related-work section of the paper cites location-based services (Ghinita
et al.) as a driving application for private kNN: a user wants the k closest
points of interest, but neither the service provider nor the cloud should
learn the user's location or which POIs were returned.

This example builds a small city grid of points of interest (clustered around
a few "neighborhood" centers), outsources it encrypted, and answers a
"restaurants near me" query with the fully secure protocol.  It also
demonstrates the ASPE baseline (Wong et al., SIGMOD'09) answering the same
query — and then breaking it with the known-plaintext attack, which is the
reason the paper builds on Paillier + two clouds instead.

Run it with::

    python examples/location_services.py
"""

from __future__ import annotations

from random import Random

import numpy as np

from repro import SkNNSystem
from repro.baselines import ASPESystem, known_plaintext_attack
from repro.db import synthetic_clustered
from repro.db.knn import LinearScanKNN


def main() -> None:
    # 30 points of interest on a 2-D grid, clustered into 4 neighborhoods.
    poi_table = synthetic_clustered(n_records=30, dimensions=2, distance_bits=10,
                                    clusters=4, seed=11)
    print("Points of interest (x, y):")
    print(" ", [record.values for record in poi_table][:10], "...")

    user_location = [12, 7]
    k = 4
    print(f"\nUser location (never revealed to the cloud): {user_location}")

    # --- the paper's approach: Paillier + two non-colluding clouds ---------
    system = SkNNSystem.setup(poi_table, key_size=256, mode="secure",
                              rng=Random(99))
    secure_answer = system.query(user_location, k)
    print(f"\nSkNN_m returns the {k} nearest POIs (visible only to the user):")
    for rank, poi in enumerate(secure_answer, start=1):
        print(f"  {rank}. {poi}")

    # Ties in distance are resolved arbitrarily by the different engines, so
    # compare the returned record sets rather than their order.
    expected = [r.record.values for r in LinearScanKNN(poi_table).query(
        user_location, k)]
    print("Matches the plaintext answer:", sorted(secure_answer) == sorted(expected))

    # --- the ASPE baseline and why the paper rejects it ---------------------
    print("\nASPE baseline (Wong et al. 2009):")
    aspe = ASPESystem(poi_table, seed=5)
    aspe_answer = aspe.query(user_location, k)
    print("  answers the query correctly:", sorted(aspe_answer) == sorted(expected))

    known = list(range(3))  # attacker knows 3 POIs (d + 1 for d = 2)
    recovered = known_plaintext_attack(aspe, known_indices=known)
    true_values = np.array([record.values for record in poi_table.records],
                           dtype=float)
    max_error = float(np.abs(recovered - true_values).max())
    print(f"  ...but {len(known)} known plaintexts recover the ENTIRE database "
          f"(max error {max_error:.2e}),")
    print("  which is exactly the chosen/known-plaintext weakness the paper cites")
    print("  as motivation for the Paillier-based two-cloud protocol.")


if __name__ == "__main__":
    main()
