#!/usr/bin/env python3
"""The outsourcing life-cycle in detail: keys, encryption, serialization, queries.

The end-to-end ``SkNNSystem`` hides the individual steps; this example spells
them out the way a real deployment would stage them, including the
serialization boundary between the data owner and the clouds:

1. Alice generates keys and encrypts her table.
2. The encrypted table is serialized to JSON (what would be uploaded to C1)
   and the secret key is serialized separately (what would be provisioned to
   C2).
3. The clouds are stood up from the serialized artifacts only.
4. Bob runs queries with the basic protocol and inspects exactly what each
   cloud observed (traffic volumes, operation counts) — the quantities the
   paper's complexity analysis is written in.

Run it with::

    python examples/outsourcing_lifecycle.py
"""

from __future__ import annotations

from random import Random

from repro.analysis import format_table
from repro.core.cloud import FederatedCloud
from repro.core.roles import DataOwner, QueryClient
from repro.core.sknn_basic import SkNNBasic
from repro.crypto import serialization as ser
from repro.db import EncryptedTable, synthetic_uniform


def main() -> None:
    # ---- Alice: keys + encryption -------------------------------------------
    table = synthetic_uniform(n_records=25, dimensions=4, distance_bits=10, seed=1)
    alice = DataOwner(table, key_size=256, rng=Random(8))
    encrypted_table = alice.encrypt_database()
    print(f"Alice encrypted {len(encrypted_table)} records x "
          f"{encrypted_table.dimensions} attributes.")

    # ---- Serialization boundary ---------------------------------------------
    upload_to_c1 = ser.dumps(encrypted_table.to_dict())
    provision_to_c2 = ser.dumps(ser.private_key_to_dict(alice.keypair.private_key))
    print(f"Upload to C1 : {len(upload_to_c1):,} bytes of ciphertext JSON")
    print(f"Provision C2 : {len(provision_to_c2):,} bytes of key material\n")

    # ---- Clouds reconstructed from the serialized artifacts ------------------
    hosted_table = EncryptedTable.from_dict(ser.loads(upload_to_c1))
    private_key = ser.private_key_from_dict(ser.loads(provision_to_c2))
    cloud = FederatedCloud.deploy(alice.keypair, rng=Random(9))
    cloud.c1.host_database(hosted_table)
    assert cloud.c2.private_key.public_key == private_key.public_key

    # ---- Bob queries ----------------------------------------------------------
    bob = QueryClient(alice.public_key, table.dimensions, rng=Random(10))
    protocol = SkNNBasic(cloud)
    query = [3, 3, 3, 3]
    shares = protocol.run_with_report(bob.encrypt_query(query), 3)
    neighbors = bob.reconstruct(shares)
    print(f"Bob's query {query} -> 3 nearest records:")
    for record in neighbors:
        print(f"  {record}")

    # ---- What the clouds observed ---------------------------------------------
    report = protocol.last_report
    print("\nWhat this query cost the clouds (SkNN_b):")
    print(format_table([{
        "encryptions": report.stats.total_encryptions,
        "decryptions": report.stats.total_decryptions,
        "exponentiations": report.stats.total_exponentiations,
        "messages": report.stats.messages,
        "ciphertexts on the wire": report.stats.ciphertexts_exchanged,
        "bytes on the wire": report.stats.bytes_transferred,
    }]))
    print("Note: SkNN_b reveals plaintext distances and the selected record")
    print("indices to the clouds; use mode='secure' (SkNN_m) when access")
    print("patterns must stay hidden, at the cost shown in Figure 2(f).")


if __name__ == "__main__":
    main()
