#!/usr/bin/env python3
"""Multi-tenant secure kNN serving: many Bobs, one sharded encrypted store.

The paper's setting has a single query user, but nothing in the protocols
prevents a deployment from serving many authorized users at once: each Bob
encrypts their own queries and reconstructs their own results, so users are
cryptographically isolated from each other, while the cloud side batches
their queries into shared scan passes over the sharded encrypted table.

This example stands up a hospital-style deployment:

* Alice (the hospital) outsources an encrypted patient table, partitioned
  across two C1 shards;
* three physicians open concurrent sessions and fire kNN queries;
* the query server batches the queries, answers them scatter-gather style,
  and every physician checks their answers against the plaintext oracle.

Run it with::

    python examples/multi_tenant_service.py
"""

from __future__ import annotations

import threading
import time
from random import Random

from repro.analysis import format_table
from repro.core.system import SkNNSystem
from repro.db import synthetic_clustered
from repro.db.knn import LinearScanKNN

N_RECORDS = 36
DIMENSIONS = 3
K = 2
PHYSICIANS = 3
QUERIES_EACH = 3


def main() -> None:
    table = synthetic_clustered(n_records=N_RECORDS, dimensions=DIMENSIONS,
                                distance_bits=10, clusters=3, seed=41)
    oracle = LinearScanKNN(table)
    print(f"Alice outsources {table.describe()} (2 shards).")

    system = SkNNSystem.setup(table, key_size=256, mode="sharded", shards=2,
                              workers=2, parallel_backend="thread",
                              rng=Random(42), k_default=K)
    server = system.serve(batch_size=PHYSICIANS,
                          randomness_pool_size=64, session_pool_size=16)

    workload_rng = Random(43)
    max_value = max(a.maximum for a in table.schema)
    mismatches: list[str] = []

    def physician(name: str) -> None:
        session = server.open_session(name)
        for _ in range(QUERIES_EACH):
            query = [workload_rng.randint(0, max_value)
                     for _ in range(DIMENSIONS)]
            answer = session.query(query, K, timeout=120)
            expected = [r.record.values for r in oracle.query(query, K)]
            if answer.neighbors != expected:
                mismatches.append(f"{name}: {query}")

    started = time.perf_counter()
    with server:
        threads = [threading.Thread(target=physician, args=(f"dr-{i}",))
                   for i in range(1, PHYSICIANS + 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    elapsed = time.perf_counter() - started

    stats = server.stats
    print(f"\n{PHYSICIANS} concurrent physicians, "
          f"{stats.queries_served} queries served:")
    print(format_table([{
        "batches": stats.batches_served,
        "mean batch size": stats.mean_batch_size,
        "wall (s)": elapsed,
        "queries/s": stats.queries_served / elapsed,
    }]))
    if mismatches:
        print(f"MISMATCHES: {mismatches}")
    else:
        print("Every answer matches the plaintext kNN oracle — the sharded,")
        print("batched serving path is exact, and each physician only ever")
        print("saw their own results.")
    system.close()


if __name__ == "__main__":
    main()
