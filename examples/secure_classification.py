#!/usr/bin/env python3
"""Secure kNN classification: predicting a diagnosis from encrypted records.

The paper motivates its protocol with a physician estimating a patient's
heart-disease risk from similar historical patients, and notes that an exact
secure-kNN primitive directly enables secure classification.  This example
does exactly that with the :class:`repro.extensions.SecureKNNClassifier`:

* the hospital outsources the heart-disease table (including the diagnosis
  column ``num``) in encrypted form,
* the physician submits the encrypted patient features of Example 1, and
* the diagnosis is predicted by a majority vote over the k nearest encrypted
  records — the diagnosis labels never leave the ciphertext domain until they
  reach the physician.

Run it with::

    python examples/secure_classification.py
"""

from __future__ import annotations

from random import Random

from repro.db import heart_disease_table
from repro.extensions import SecureKNNClassifier


def main() -> None:
    table = heart_disease_table(include_diagnosis=True)
    print("Training data: the heart-disease sample with its diagnosis column "
          f"('num', 0=no disease .. 4) — {len(table)} records.")

    classifier = SecureKNNClassifier(table, label_column="num", key_size=256,
                                     mode="basic", rng=Random(7))

    patient = [58, 1, 4, 133, 196, 1, 2, 1, 6]
    print(f"\nNew patient features (Example 1): {patient}")

    for k in (1, 2, 3):
        result = classifier.classify_with_details(patient, k=k)
        print(f"\nk={k}: predicted diagnosis = {result.label} "
              f"(confidence {result.confidence:.0%}, votes {result.votes})")
        for rank, neighbor in enumerate(result.neighbors, start=1):
            print(f"   neighbor {rank}: features={neighbor[:-1]}, "
                  f"diagnosis={neighbor[-1]}")

    print("\nThe k=2 neighbors are records t4 and t5 of the paper's Table 1,")
    print("both with diagnosis 3 — so the physician learns that similar past")
    print("patients had significant heart disease, while the cloud learned")
    print("nothing about this patient or the historical records.")


if __name__ == "__main__":
    main()
