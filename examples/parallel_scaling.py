#!/usr/bin/env python3
"""Parallel SkNN_b: reproducing the spirit of Figure 3 on this machine.

The paper notes that the per-record computations of SkNN_b are independent and
reports a ~6x speedup from a 6-thread OpenMP implementation (Figure 3).  This
example runs the serial and process-pool variants of the same protocol on a
synthetic workload and prints the measured speedup together with the projected
paper-scale curve.

Run it with::

    python examples/parallel_scaling.py
"""

from __future__ import annotations

import os
import time
from random import Random

from repro.analysis import Calibrator, ExperimentSeries, format_table, sknn_basic_counts
from repro.core.cloud import FederatedCloud
from repro.core.parallel import ParallelSkNNBasic
from repro.core.roles import DataOwner, QueryClient
from repro.crypto import generate_keypair
from repro.db import synthetic_uniform


def measured_speedup(n_records: int, workers: int) -> dict[str, float]:
    """Run serial and parallel SkNN_b on one workload and time both."""
    table = synthetic_uniform(n_records=n_records, dimensions=6, distance_bits=10,
                              seed=3)
    keypair = generate_keypair(256, Random(12))
    owner = DataOwner(table, keypair=keypair, rng=Random(13))
    cloud = FederatedCloud.deploy(keypair, rng=Random(14))
    cloud.c1.host_database(owner.encrypt_database())
    client = QueryClient(keypair.public_key, table.dimensions, rng=Random(15))
    encrypted_query = client.encrypt_query([1, 2, 3, 4, 5, 6])

    timings: dict[str, float] = {}
    for backend, worker_count in (("serial", 1), ("process", workers)):
        with ParallelSkNNBasic(cloud, workers=worker_count,
                               backend=backend) as runner:
            started = time.perf_counter()
            runner.run(encrypted_query, 5)
            timings[backend] = time.perf_counter() - started
    return timings


def main() -> None:
    workers = min(os.cpu_count() or 2, 6)
    print(f"Machine has {os.cpu_count()} cores; using {workers} workers "
          f"(the paper used 6).\n")

    print("Measured on this machine (n=120, m=6, k=5, K=256):")
    timings = measured_speedup(n_records=120, workers=workers)
    print(format_table([{
        "serial (s)": timings["serial"],
        f"parallel x{workers} (s)": timings["process"],
        "speedup": timings["serial"] / timings["process"],
    }]))

    print("Projected at the paper's scale (m=6, k=5, K=512, 6 workers):")
    calibrator = Calibrator(samples=10)
    series = ExperimentSeries(title="Figure 3 projection", x_label="n",
                              x_values=[2000, 4000, 6000, 8000, 10000])
    serial = [calibrator.predict_seconds(sknn_basic_counts(n, 6, 5), 512)
              for n in series.x_values]
    series.add_series("serial (s)", serial)
    series.add_series("parallel 6w (s)", [value / 6 for value in serial])
    print(series.to_text())
    print("The paper reports 215.59 s serial vs 40 s parallel at n=10000 in C;")
    print("the pure-Python constant factor is larger, the ~6x ratio is the same.")


if __name__ == "__main__":
    main()
